//! Fingerprint-keyed construction cache with a versioned on-disk snapshot
//! codec.
//!
//! For the oracle/query workloads the paper's structures serve, the build
//! is the dominant cost and should be paid **once per
//! `(graph, algorithm, config)`**. The determinism guarantee (see
//! [`crate::api`]) makes that safe: every registry construction is a pure
//! function of `(graph, BuildConfig)`, so a stored output is not a
//! heuristic approximation of a rebuild — it *is* the rebuild, and the
//! stored [`stream fingerprint`](crate::emulator::stream_fingerprint) lets
//! a load prove it.
//!
//! Four layers:
//!
//! * [`Snapshot`] + the zero-dependency binary codec
//!   ([`Snapshot::encode`] / [`Snapshot::decode`]): magic, version, key
//!   fingerprints, the exact insertion stream with provenance, certified
//!   stretch, size bound, CONGEST stats, build stats, and a whole-file
//!   checksum. Corrupt, truncated, or version-mismatched files decode to a
//!   typed [`SnapshotError`], never a panic.
//! * [`ConstructionCache`]: a directory of snapshots keyed by
//!   `(graph fingerprint, algorithm, config digest)` with `store` / `load`
//!   / [`ls`](ConstructionCache::ls) / [`clear`](ConstructionCache::clear)
//!   / [`verify`](ConstructionCache::verify) — the same integrity check the
//!   CLI (`usnae cache verify`) and CI run.
//! * [`build_cached`]: the read-through wrapper every consumer uses
//!   (builder `.cache_dir(..)`, CLI `--cache`, eval/bench sweeps). A hit is
//!   accepted only after the decoded stream's recomputed fingerprint
//!   matches the stored one; anything less rebuilds.
//! * [`EvictingCache`]: the byte-budgeted, LRU-evicting, concurrency-safe
//!   view the always-on `usnae serve` daemon shares across jobs —
//!   deterministic eviction order, atomic publication (temp file +
//!   rename), lock-free concurrent readers, and hit/miss/eviction
//!   counters for the service `stats` endpoint. One-shot consumers keep
//!   the unbounded directory cache; a long-running server bounds it.
//!
//! Traced builds (`BuildConfig::traced`) bypass the cache: snapshots
//! deliberately store the insertion stream, not the in-memory [`Trace`](crate::api::Trace)
//! families, so a hit could not honor the trace request. Everything a
//! query workload consumes — emulator, certification, congest stats — is
//! preserved exactly.

use crate::api::{BuildConfig, BuildError, BuildOutput, CongestStats, Construction};
use crate::emulator::{stream_fingerprint, EdgeKind, EdgeProvenance, Emulator};
use crate::exec::{
    BuildStats, CacheStatus, MessageStats, PairStats, PhaseTiming, ShardTiming, TransportKind,
};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use usnae_congest::Metrics;
use usnae_graph::metrics::Fnv64;
use usnae_graph::{ByteMap, Dist, Graph, StorageError, VertexId, WeightedEdge};

/// Snapshot file magic: identifies the format before any parsing.
pub const MAGIC: &[u8; 8] = b"USNAESNP";

/// Current codec version. Bump on any layout change; old files then fail
/// with [`SnapshotError::UnsupportedVersion`] instead of misparsing.
/// (v2 added the per-shard timing section of partitioned builds; v3 added
/// the transport byte and the measured [`MessageStats`] of worker-pool
/// builds; v4 restructured the file into a **section directory** — five
/// 8-aligned sections located by an offset/length table right after the
/// header — and added the [`SECTION_EMU_CSR`] weighted-CSR image of the
/// emulator, so a snapshot can be indexed and served ([`MappedSnapshot`],
/// [`MappedEmulator`]) without decoding the record stream. v2/v3 files
/// remain readable: v2's transport decodes as `inproc` with no message
/// stats.)
pub const VERSION: u32 = 4;

/// Oldest codec version [`Snapshot::decode`] still reads.
pub const MIN_VERSION: u32 = 2;

/// v4 section id: cache key (graph fingerprint, config digest, algorithm).
pub const SECTION_KEY: u64 = 1;
/// v4 section id: stream fingerprint, vertex count, certification,
/// size bound, CONGEST stats.
pub const SECTION_META: u64 = 2;
/// v4 section id: the exact insertion stream with provenance.
pub const SECTION_RECORDS: u64 = 3;
/// v4 section id: build stats (threads, timings, shards, transport,
/// messages).
pub const SECTION_STATS: u64 = 4;
/// v4 section id: the emulator's weighted adjacency as an all-`u64` CSR
/// (the [`MappedEmulator`] Dijkstra substrate).
pub const SECTION_EMU_CSR: u64 = 5;

/// The five v4 sections, directory order.
const SECTION_IDS: [u64; 5] = [
    SECTION_KEY,
    SECTION_META,
    SECTION_RECORDS,
    SECTION_STATS,
    SECTION_EMU_CSR,
];
/// Bytes per section-directory entry: id, absolute offset, length.
const DIR_ENTRY: usize = 24;
/// Bytes before the v4 section directory: magic, version, section count.
const V4_HEADER: usize = 16;

/// Extension of snapshot files inside a cache directory.
pub const EXTENSION: &str = "usnae";

/// Typed failures of the snapshot codec and cache directory operations.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The file's codec version is not readable by this binary.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Version this binary writes and reads.
        supported: u32,
    },
    /// The file ended before the declared content (truncation).
    Truncated {
        /// Byte offset at which the reader ran dry.
        offset: usize,
    },
    /// The whole-file checksum did not match — bit rot or tampering.
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        stored: u64,
        /// Checksum recomputed over the content.
        computed: u64,
    },
    /// Structurally invalid content (bad edge-kind byte, endpoint out of
    /// range, non-finite stored float, oversized declared length).
    Corrupt {
        /// Human-readable reason.
        reason: String,
    },
    /// The decoded stream does not reproduce the stored stream
    /// fingerprint — the entry is internally inconsistent.
    FingerprintMismatch {
        /// Fingerprint stored in the header.
        stored: u64,
        /// Fingerprint recomputed from the decoded records.
        recomputed: u64,
    },
    /// The entry decodes cleanly but belongs to a different
    /// `(graph, algorithm, config)` key than the caller asked for — a
    /// stale or misfiled entry.
    KeyMismatch {
        /// What the entry claims to be.
        entry: String,
        /// What the caller asked for.
        requested: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o failure: {e}"),
            SnapshotError::BadMagic => write!(f, "not a usnae snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot version {found} not supported (this binary reads version {supported})"
            ),
            SnapshotError::Truncated { offset } => {
                write!(f, "snapshot truncated at byte {offset}")
            }
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch (stored {stored:016x}, computed {computed:016x})"
            ),
            SnapshotError::Corrupt { reason } => write!(f, "snapshot corrupt: {reason}"),
            SnapshotError::FingerprintMismatch { stored, recomputed } => write!(
                f,
                "stream fingerprint mismatch (stored {stored:016x}, recomputed {recomputed:016x})"
            ),
            SnapshotError::KeyMismatch { entry, requested } => write!(
                f,
                "snapshot key mismatch (entry is {entry}, requested {requested})"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// The cache key: what [`build_cached`] hashes a build request down to.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Canonical input-graph fingerprint
    /// ([`usnae_graph::metrics::fingerprint`]).
    pub graph_fingerprint: u64,
    /// Registry name of the construction.
    pub algorithm: String,
    /// Output-relevant config digest ([`BuildConfig::stable_digest`]).
    pub config_digest: u64,
}

impl CacheKey {
    /// Derives the key for one build request. Storage-generic: a
    /// file-backed graph keys identically to its heap materialization.
    pub fn new<S: usnae_graph::AdjStorage>(
        g: &usnae_graph::GraphCore<S>,
        algorithm: &str,
        cfg: &BuildConfig,
    ) -> Self {
        CacheKey {
            graph_fingerprint: usnae_graph::metrics::fingerprint(g),
            algorithm: algorithm.to_string(),
            config_digest: cfg.stable_digest(),
        }
    }

    /// The entry's file name inside a cache directory.
    pub fn file_name(&self) -> String {
        format!(
            "{}-g{:016x}-c{:016x}.{EXTENSION}",
            self.algorithm, self.graph_fingerprint, self.config_digest
        )
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} g={:016x} c={:016x}",
            self.algorithm, self.graph_fingerprint, self.config_digest
        )
    }
}

/// A serializable image of one [`BuildOutput`] — everything except the
/// in-memory [`Trace`](crate::api::Trace) families and wall-clock noise.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The key this entry answers.
    pub key: CacheKey,
    /// Fingerprint of the stored insertion stream (the proof obligation on
    /// load).
    pub stream_fingerprint: u64,
    /// Vertex count of the emulator.
    pub num_vertices: usize,
    /// The exact insertion stream with provenance, in insertion order.
    pub records: Vec<(WeightedEdge, EdgeProvenance)>,
    /// Certified `(α, β)`, when the construction certifies one.
    pub certified: Option<(f64, f64)>,
    /// Proven size bound, when known.
    pub size_bound: Option<f64>,
    /// CONGEST stats for simulator-backed builds.
    pub congest: Option<CongestStats>,
    /// Stats of the build that produced the entry (threads, wall clock,
    /// per-phase timings — `cache` is always recorded as `Miss`, the status
    /// of the producing build).
    pub stats: BuildStats,
}

/// Little-endian byte writer with the running whole-file checksum.
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    fn u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    fn u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    fn finish(mut self) -> Vec<u8> {
        let mut h = Fnv64::new();
        h.write_bytes(&self.buf);
        let checksum = h.finish();
        self.buf.extend_from_slice(&checksum.to_le_bytes());
        self.buf
    }
}

/// Bounds-checked little-endian reader; every read can fail with
/// [`SnapshotError::Truncated`].
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(SnapshotError::Truncated { offset: self.pos })?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A `usize` that must also be a plausible in-file count: the codec
    /// never stores more logical records than bytes, so any declared length
    /// beyond the remaining buffer is corruption, not an allocation order.
    fn count(&mut self) -> Result<usize, SnapshotError> {
        let x = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if x > remaining {
            return Err(SnapshotError::Corrupt {
                reason: format!("declared count {x} exceeds remaining {remaining} bytes"),
            });
        }
        Ok(x as usize)
    }
}

fn opt_f64(w: &mut Writer, x: Option<f64>) {
    match x {
        Some(v) => {
            w.u8(1);
            w.u64(v.to_bits());
        }
        None => w.u8(0),
    }
}

fn read_opt_f64(r: &mut Reader) -> Result<Option<f64>, SnapshotError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.f64()?)),
        b => Err(SnapshotError::Corrupt {
            reason: format!("invalid option tag {b}"),
        }),
    }
}

fn write_records(w: &mut Writer, records: &[(WeightedEdge, EdgeProvenance)]) {
    w.u64(records.len() as u64);
    for (e, p) in records {
        w.u64(e.u as u64);
        w.u64(e.v as u64);
        w.u64(e.weight);
        w.u64(p.phase as u64);
        w.u8(p.kind.code());
        w.u64(p.charged_to as u64);
    }
}

fn read_records(
    r: &mut Reader,
    num_vertices: usize,
) -> Result<Vec<(WeightedEdge, EdgeProvenance)>, SnapshotError> {
    let record_count = r.count()?;
    let mut records = Vec::with_capacity(record_count);
    for i in 0..record_count {
        let u = r.u64()? as usize;
        let v = r.u64()? as usize;
        let weight = r.u64()?;
        let phase = r.u64()? as usize;
        let kind_byte = r.u8()?;
        let charged_to = r.u64()? as usize;
        let kind = EdgeKind::from_code(kind_byte).ok_or_else(|| SnapshotError::Corrupt {
            reason: format!("record {i}: invalid edge-kind byte {kind_byte}"),
        })?;
        if u >= num_vertices || v >= num_vertices || u == v || charged_to >= num_vertices {
            return Err(SnapshotError::Corrupt {
                reason: format!(
                    "record {i}: endpoints ({u}, {v}) out of range for n={num_vertices}"
                ),
            });
        }
        records.push((
            WeightedEdge::new(u, v, weight),
            EdgeProvenance {
                phase,
                kind,
                charged_to,
            },
        ));
    }
    Ok(records)
}

fn write_certified(w: &mut Writer, certified: Option<(f64, f64)>) {
    match certified {
        Some((a, b)) => {
            w.u8(1);
            w.u64(a.to_bits());
            w.u64(b.to_bits());
        }
        None => w.u8(0),
    }
}

fn read_certified(r: &mut Reader) -> Result<Option<(f64, f64)>, SnapshotError> {
    match r.u8()? {
        0 => Ok(None),
        1 => {
            let a = r.f64()?;
            let b = r.f64()?;
            if a.is_nan() || b.is_nan() {
                return Err(SnapshotError::Corrupt {
                    reason: "certified stretch is NaN".into(),
                });
            }
            Ok(Some((a, b)))
        }
        b => Err(SnapshotError::Corrupt {
            reason: format!("invalid certified tag {b}"),
        }),
    }
}

fn write_congest(w: &mut Writer, congest: &Option<CongestStats>) {
    match congest {
        Some(c) => {
            w.u8(1);
            w.u64(c.metrics.rounds);
            w.u64(c.metrics.charged_rounds);
            w.u64(c.metrics.messages);
            w.u64(c.metrics.words);
            w.u64(c.metrics.peak_in_flight);
            w.u64(c.knowledge_checked as u64);
            w.u64(c.knowledge_violations as u64);
        }
        None => w.u8(0),
    }
}

fn read_congest(r: &mut Reader) -> Result<Option<CongestStats>, SnapshotError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(CongestStats {
            metrics: Metrics {
                rounds: r.u64()?,
                charged_rounds: r.u64()?,
                messages: r.u64()?,
                words: r.u64()?,
                peak_in_flight: r.u64()?,
            },
            knowledge_checked: r.u64()? as usize,
            knowledge_violations: r.u64()? as usize,
        })),
        b => Err(SnapshotError::Corrupt {
            reason: format!("invalid congest tag {b}"),
        }),
    }
}

/// Threads, wall clock, per-phase and per-shard timings — the stats head
/// every codec version shares.
fn write_core_stats(w: &mut Writer, stats: &BuildStats) {
    w.u64(stats.threads as u64);
    w.u64(stats.total.as_nanos().min(u128::from(u64::MAX)) as u64);
    w.u64(stats.phases.len() as u64);
    for p in &stats.phases {
        w.u64(p.phase as u64);
        w.u64(p.duration.as_nanos().min(u128::from(u64::MAX)) as u64);
        w.u64(p.explorations as u64);
    }
    w.u64(stats.shards.len() as u64);
    for sh in &stats.shards {
        w.u64(sh.shard as u64);
        w.u64(sh.vertices as u64);
        w.u64(sh.local_edges as u64);
        w.u64(sh.cut_edges as u64);
        w.u64(sh.duration.as_nanos().min(u128::from(u64::MAX)) as u64);
    }
}

#[allow(clippy::type_complexity)]
fn read_core_stats(
    r: &mut Reader,
) -> Result<(usize, Duration, Vec<PhaseTiming>, Vec<ShardTiming>), SnapshotError> {
    let threads = r.u64()? as usize;
    let total = Duration::from_nanos(r.u64()?);
    let phase_count = r.count()?;
    let mut phases = Vec::with_capacity(phase_count);
    for _ in 0..phase_count {
        phases.push(PhaseTiming {
            phase: r.u64()? as usize,
            duration: Duration::from_nanos(r.u64()?),
            explorations: r.u64()? as usize,
        });
    }
    let shard_count = r.count()?;
    let mut shards = Vec::with_capacity(shard_count);
    for _ in 0..shard_count {
        shards.push(ShardTiming {
            shard: r.u64()? as usize,
            vertices: r.u64()? as usize,
            local_edges: r.u64()? as usize,
            cut_edges: r.u64()? as usize,
            duration: Duration::from_nanos(r.u64()?),
        });
    }
    Ok((threads, total, phases, shards))
}

/// The transport byte plus measured message stats (v3 and later).
fn write_transport_stats(w: &mut Writer, stats: &BuildStats) {
    w.u8(stats.transport.code());
    match &stats.messages {
        Some(m) => {
            w.u8(1);
            w.u64(m.rounds);
            w.u64(m.messages);
            w.u64(m.bytes);
            w.u64(m.pairs.len() as u64);
            for p in &m.pairs {
                w.u64(p.src as u64);
                w.u64(p.dst as u64);
                w.u64(p.messages);
                w.u64(p.bytes);
            }
        }
        None => w.u8(0),
    }
}

fn read_transport_stats(
    r: &mut Reader,
) -> Result<(TransportKind, Option<MessageStats>), SnapshotError> {
    let code = r.u8()?;
    let transport = TransportKind::from_code(code).ok_or_else(|| SnapshotError::Corrupt {
        reason: format!("invalid transport byte {code}"),
    })?;
    let messages = match r.u8()? {
        0 => None,
        1 => {
            let rounds = r.u64()?;
            let total_messages = r.u64()?;
            let bytes = r.u64()?;
            let pair_count = r.count()?;
            let mut pairs = Vec::with_capacity(pair_count);
            for _ in 0..pair_count {
                pairs.push(PairStats {
                    src: r.u64()? as usize,
                    dst: r.u64()? as usize,
                    messages: r.u64()?,
                    bytes: r.u64()?,
                });
            }
            Some(MessageStats {
                rounds,
                messages: total_messages,
                bytes,
                pairs,
            })
        }
        b => {
            return Err(SnapshotError::Corrupt {
                reason: format!("invalid message-stats tag {b}"),
            })
        }
    };
    Ok((transport, messages))
}

/// Serializes the emulator adjacency implied by `records` as an all-`u64`
/// weighted CSR: `n`, `m` (distinct undirected edges), `adj_len = 2m`, the
/// `(n+1)`-entry offset array, then `(neighbor, weight)` pairs with every
/// vertex's neighbors ascending. The weight of a pair is the minimum over
/// the stream (the emulator's lighter-parallel-edge-wins rule), so the
/// section is a pure function of the records: decode byte-compares it
/// against a recomputation, and [`MappedEmulator`] runs Dijkstra over it
/// without ever touching the record stream.
fn emu_csr_section(n: usize, records: &[(WeightedEdge, EdgeProvenance)]) -> Vec<u8> {
    let mut weights: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    for (e, _) in records {
        let w = weights.entry((e.u, e.v)).or_insert(e.weight);
        if e.weight < *w {
            *w = e.weight;
        }
    }
    let mut offsets = vec![0u64; n + 1];
    for &(u, v) in weights.keys() {
        offsets[u + 1] += 1;
        offsets[v + 1] += 1;
    }
    for v in 0..n {
        offsets[v + 1] += offsets[v];
    }
    let adj_len = offsets[n] as usize;
    // Pairs iterate in ascending (u, v) order with u < v, so each row
    // receives first its smaller neighbors (ascending u) and then its
    // larger ones (ascending v) — sorted without an explicit sort.
    let mut adj = vec![(0u64, 0u64); adj_len];
    let mut cursor: Vec<usize> = offsets[..n].iter().map(|&o| o as usize).collect();
    for (&(u, v), &wt) in &weights {
        adj[cursor[u]] = (v as u64, wt);
        cursor[u] += 1;
        adj[cursor[v]] = (u as u64, wt);
        cursor[v] += 1;
    }
    let mut w = Writer::new();
    w.u64(n as u64);
    w.u64(weights.len() as u64);
    w.u64(adj_len as u64);
    for o in &offsets {
        w.u64(*o);
    }
    for (nb, wt) in adj {
        w.u64(nb);
        w.u64(wt);
    }
    w.buf
}

/// Byte ranges of the five v4 sections inside the checksummed content.
struct SectionTable {
    key: std::ops::Range<usize>,
    meta: std::ops::Range<usize>,
    records: std::ops::Range<usize>,
    stats: std::ops::Range<usize>,
    emu: std::ops::Range<usize>,
}

/// Parses and validates the v4 section directory over the checksummed
/// content (magic and version already checked): exactly the five known
/// ids in order, every section 8-aligned, in-bounds, and non-overlapping.
fn parse_directory(content: &[u8]) -> Result<SectionTable, SnapshotError> {
    let mut r = Reader::new(content);
    r.take(MAGIC.len() + 4)?;
    let count = r.u32()? as usize;
    if count != SECTION_IDS.len() {
        return Err(SnapshotError::Corrupt {
            reason: format!(
                "section directory declares {count} sections, expected {}",
                SECTION_IDS.len()
            ),
        });
    }
    let mut ranges = Vec::with_capacity(count);
    let mut prev_end = V4_HEADER + count * DIR_ENTRY;
    if prev_end > content.len() {
        return Err(SnapshotError::Truncated {
            offset: content.len(),
        });
    }
    for (i, &expected_id) in SECTION_IDS.iter().enumerate() {
        let id = r.u64()?;
        let off = r.u64()?;
        let len = r.u64()?;
        if id != expected_id {
            return Err(SnapshotError::Corrupt {
                reason: format!("directory entry {i} has id {id}, expected {expected_id}"),
            });
        }
        let off = usize::try_from(off).map_err(|_| SnapshotError::Corrupt {
            reason: format!("section {id} offset {off} overflows"),
        })?;
        let len = usize::try_from(len).map_err(|_| SnapshotError::Corrupt {
            reason: format!("section {id} length {len} overflows"),
        })?;
        if off % 8 != 0 {
            return Err(SnapshotError::Corrupt {
                reason: format!("section {id} offset {off} is not 8-aligned"),
            });
        }
        if off < prev_end {
            return Err(SnapshotError::Corrupt {
                reason: format!("section {id} at {off} overlaps the previous section"),
            });
        }
        let end = off
            .checked_add(len)
            .filter(|&e| e <= content.len())
            .ok_or_else(|| SnapshotError::Corrupt {
                reason: format!("section {id} ({off}+{len}) extends past the file"),
            })?;
        ranges.push(off..end);
        prev_end = end;
    }
    let mut it = ranges.into_iter();
    Ok(SectionTable {
        key: it.next().unwrap(),
        meta: it.next().unwrap(),
        records: it.next().unwrap(),
        stats: it.next().unwrap(),
        emu: it.next().unwrap(),
    })
}

/// A section reader must consume its slice exactly.
fn section_end(r: &Reader, name: &str) -> Result<(), SnapshotError> {
    if r.pos != r.buf.len() {
        return Err(SnapshotError::Corrupt {
            reason: format!(
                "{} trailing bytes after the {name} section content",
                r.buf.len() - r.pos
            ),
        });
    }
    Ok(())
}

impl Snapshot {
    /// Captures a build output under its key. The stream fingerprint is
    /// computed here, from the same records that are stored, so encode →
    /// decode → verify is closed.
    pub fn from_output(key: CacheKey, out: &BuildOutput) -> Self {
        Snapshot {
            key,
            stream_fingerprint: out.stream_fingerprint(),
            num_vertices: out.emulator.num_vertices(),
            records: out.emulator.provenance().to_vec(),
            certified: out.certified,
            size_bound: out.size_bound,
            congest: out.congest.clone(),
            stats: BuildStats {
                cache: CacheStatus::Miss,
                ..out.stats.clone()
            },
        }
    }

    /// Serializes to the version-4 wire format: section directory, five
    /// 8-aligned sections, trailing FNV-64 checksum over everything before
    /// it.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_version(VERSION)
    }

    /// [`encode`](Self::encode) pinned to an older readable version —
    /// kept so the forward-compat suite can produce genuine old files.
    /// Versions below [`MIN_VERSION`] are not encodable.
    pub fn encode_version(&self, version: u32) -> Vec<u8> {
        assert!(
            (MIN_VERSION..=VERSION).contains(&version),
            "cannot encode codec version {version}"
        );
        if version >= 4 {
            return self.encode_v4();
        }
        // v2/v3: one sequential stream, no directory.
        let mut w = Writer::new();
        w.bytes(MAGIC);
        w.u32(version);
        w.u64(self.key.graph_fingerprint);
        w.u64(self.key.config_digest);
        w.u32(self.key.algorithm.len() as u32);
        w.bytes(self.key.algorithm.as_bytes());
        w.u64(self.stream_fingerprint);
        w.u64(self.num_vertices as u64);
        write_records(&mut w, &self.records);
        write_certified(&mut w, self.certified);
        opt_f64(&mut w, self.size_bound);
        write_congest(&mut w, &self.congest);
        write_core_stats(&mut w, &self.stats);
        if version >= 3 {
            // v3: the transport the build ran on plus its measured message
            // statistics (worker-pool builds only).
            write_transport_stats(&mut w, &self.stats);
        }
        w.finish()
    }

    /// The v4 layout: `MAGIC | version | section count | directory
    /// (id, offset, length per section) | sections | checksum`, every
    /// section starting on an 8-byte boundary so the all-`u64`
    /// [`SECTION_EMU_CSR`] payload is alignment-safe under mmap.
    fn encode_v4(&self) -> Vec<u8> {
        let mut key = Writer::new();
        key.u64(self.key.graph_fingerprint);
        key.u64(self.key.config_digest);
        key.u32(self.key.algorithm.len() as u32);
        key.bytes(self.key.algorithm.as_bytes());

        let mut meta = Writer::new();
        meta.u64(self.stream_fingerprint);
        meta.u64(self.num_vertices as u64);
        write_certified(&mut meta, self.certified);
        opt_f64(&mut meta, self.size_bound);
        write_congest(&mut meta, &self.congest);

        let mut records = Writer::new();
        write_records(&mut records, &self.records);

        let mut stats = Writer::new();
        write_core_stats(&mut stats, &self.stats);
        write_transport_stats(&mut stats, &self.stats);

        let emu = emu_csr_section(self.num_vertices, &self.records);

        let bodies = [key.buf, meta.buf, records.buf, stats.buf, emu];
        let mut w = Writer::new();
        w.bytes(MAGIC);
        w.u32(4);
        w.u32(SECTION_IDS.len() as u32);
        let mut starts = [0usize; 5];
        let mut offset = V4_HEADER + SECTION_IDS.len() * DIR_ENTRY;
        for (i, body) in bodies.iter().enumerate() {
            let start = (offset + 7) & !7;
            starts[i] = start;
            w.u64(SECTION_IDS[i]);
            w.u64(start as u64);
            w.u64(body.len() as u64);
            offset = start + body.len();
        }
        for (i, body) in bodies.iter().enumerate() {
            while w.buf.len() < starts[i] {
                w.u8(0);
            }
            w.bytes(body);
        }
        w.finish()
    }

    /// Decodes and integrity-checks a snapshot.
    ///
    /// Checks, in order: magic, version, checksum over the whole content,
    /// structural validity of every record (edge-kind byte, endpoints in
    /// range), and that the decoded stream reproduces the stored
    /// fingerprint. Any failure is a typed [`SnapshotError`].
    ///
    /// # Errors
    ///
    /// See [`SnapshotError`]; no variant panics.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        // Checksum first: it covers everything, so all later parsing runs
        // on bytes already known to be the writer's.
        if bytes.len() < MAGIC.len() + 4 + 8 {
            return Err(SnapshotError::Truncated {
                offset: bytes.len(),
            });
        }
        let mut r = Reader::new(bytes);
        if r.take(MAGIC.len())? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u32()?;
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            });
        }
        let (content, trailer) = bytes.split_at(bytes.len() - 8);
        let stored_checksum = u64::from_le_bytes(trailer.try_into().unwrap());
        let mut h = Fnv64::new();
        h.write_bytes(content);
        let computed = h.finish();
        if computed != stored_checksum {
            return Err(SnapshotError::ChecksumMismatch {
                stored: stored_checksum,
                computed,
            });
        }
        let snap = if version >= 4 {
            Self::decode_v4(content)?
        } else {
            Self::decode_legacy(content, version)?
        };
        let recomputed = stream_fingerprint(&snap.records);
        if recomputed != snap.stream_fingerprint {
            return Err(SnapshotError::FingerprintMismatch {
                stored: snap.stream_fingerprint,
                recomputed,
            });
        }
        Ok(snap)
    }

    /// v2/v3: one sequential stream past magic+version.
    fn decode_legacy(content: &[u8], version: u32) -> Result<Snapshot, SnapshotError> {
        let mut r = Reader::new(content);
        r.take(MAGIC.len() + 4)?;
        let graph_fingerprint = r.u64()?;
        let config_digest = r.u64()?;
        let name_len = r.u32()? as usize;
        let algorithm =
            String::from_utf8(r.take(name_len)?.to_vec()).map_err(|_| SnapshotError::Corrupt {
                reason: "algorithm name is not UTF-8".into(),
            })?;
        let stream_fp = r.u64()?;
        let num_vertices = r.u64()? as usize;
        let records = read_records(&mut r, num_vertices)?;
        let certified = read_certified(&mut r)?;
        let size_bound = read_opt_f64(&mut r)?;
        let congest = read_congest(&mut r)?;
        let (threads, total, phases, shards) = read_core_stats(&mut r)?;
        // v3 tail; v2 files predate worker transports, so they ran inproc
        // with no message exchange.
        let (transport, messages) = if version >= 3 {
            read_transport_stats(&mut r)?
        } else {
            (TransportKind::Inproc, None)
        };
        section_end(&r, "declared")?;
        Ok(Snapshot {
            key: CacheKey {
                graph_fingerprint,
                algorithm,
                config_digest,
            },
            stream_fingerprint: stream_fp,
            num_vertices,
            records,
            certified,
            size_bound,
            congest,
            stats: BuildStats {
                threads,
                total,
                phases,
                shards,
                transport,
                messages,
                cache: CacheStatus::Miss,
            },
        })
    }

    /// v4: locate every section through the directory, decode each, and
    /// byte-compare the stored [`SECTION_EMU_CSR`] against a recomputation
    /// from the records — a served section that drifted from the stream it
    /// claims to index is corruption, not a quirk.
    fn decode_v4(content: &[u8]) -> Result<Snapshot, SnapshotError> {
        let table = parse_directory(content)?;

        let mut r = Reader::new(&content[table.key.clone()]);
        let graph_fingerprint = r.u64()?;
        let config_digest = r.u64()?;
        let name_len = r.u32()? as usize;
        let algorithm =
            String::from_utf8(r.take(name_len)?.to_vec()).map_err(|_| SnapshotError::Corrupt {
                reason: "algorithm name is not UTF-8".into(),
            })?;
        section_end(&r, "key")?;

        let mut r = Reader::new(&content[table.meta.clone()]);
        let stream_fp = r.u64()?;
        let num_vertices = r.u64()? as usize;
        let certified = read_certified(&mut r)?;
        let size_bound = read_opt_f64(&mut r)?;
        let congest = read_congest(&mut r)?;
        section_end(&r, "meta")?;

        let mut r = Reader::new(&content[table.records.clone()]);
        let records = read_records(&mut r, num_vertices)?;
        section_end(&r, "records")?;

        let mut r = Reader::new(&content[table.stats.clone()]);
        let (threads, total, phases, shards) = read_core_stats(&mut r)?;
        let (transport, messages) = read_transport_stats(&mut r)?;
        section_end(&r, "stats")?;

        if content[table.emu.clone()] != emu_csr_section(num_vertices, &records)[..] {
            return Err(SnapshotError::Corrupt {
                reason: "emulator CSR section does not match the record stream".into(),
            });
        }

        Ok(Snapshot {
            key: CacheKey {
                graph_fingerprint,
                algorithm,
                config_digest,
            },
            stream_fingerprint: stream_fp,
            num_vertices,
            records,
            certified,
            size_bound,
            congest,
            stats: BuildStats {
                threads,
                total,
                phases,
                shards,
                transport,
                messages,
                cache: CacheStatus::Miss,
            },
        })
    }

    /// Replays the stored stream into a live emulator (see
    /// [`Emulator::from_provenance`]).
    pub fn rebuild_emulator(&self) -> Emulator {
        Emulator::from_provenance(self.num_vertices, self.records.iter().cloned())
    }

    /// Converts a verified snapshot into a [`BuildOutput`] for the given
    /// construction. `load_time` becomes `stats.total`; the phase list is
    /// empty and `stats.cache` is [`CacheStatus::Hit`] — a warm hit
    /// visibly skipped all phase work.
    pub fn into_output(
        self,
        algorithm: &'static str,
        threads: usize,
        load_time: Duration,
    ) -> BuildOutput {
        BuildOutput {
            emulator: self.rebuild_emulator(),
            certified: self.certified,
            size_bound: self.size_bound,
            trace: None,
            congest: self.congest,
            stats: BuildStats {
                threads,
                total: load_time,
                phases: Vec::new(),
                shards: Vec::new(),
                // The stored transport/messages describe the producing
                // build — kept on a hit so reports still show what ran.
                transport: self.stats.transport,
                messages: self.stats.messages.clone(),
                cache: CacheStatus::Hit,
            },
            algorithm,
        }
    }
}

fn storage_to_snapshot_error(e: StorageError) -> SnapshotError {
    match e {
        StorageError::Io(e) => SnapshotError::Io(e),
        other => SnapshotError::Corrupt {
            reason: other.to_string(),
        },
    }
}

/// A v4 snapshot file held open through the section directory — the
/// serving side of the codec. The file is mapped ([`ByteMap`]: mmap where
/// available, a paged read elsewhere) and **indexed, not decoded**: open
/// verifies the whole-file checksum, parses the small KEY/META sections,
/// and structurally validates the [`SECTION_EMU_CSR`] index (monotone
/// offsets, in-range neighbors) so later reads can never go out of
/// bounds — but the record stream is never materialized. v2/v3 files are
/// refused with [`SnapshotError::UnsupportedVersion`]; decode them with
/// [`Snapshot::decode`] instead.
#[derive(Debug)]
pub struct MappedSnapshot {
    map: ByteMap,
    path: PathBuf,
    key: CacheKey,
    stream_fingerprint: u64,
    num_vertices: usize,
    num_edges: usize,
    num_records: usize,
    certified: Option<(f64, f64)>,
    size_bound: Option<f64>,
    /// Absolute byte offset of the EMU_CSR `(n+1)`-entry offset array.
    emu_offsets_at: usize,
    /// Absolute byte offset of the EMU_CSR `(neighbor, weight)` pairs.
    emu_adj_at: usize,
}

impl MappedSnapshot {
    /// Opens and indexes a v4 snapshot file.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::UnsupportedVersion`] for pre-v4 files (they carry
    /// no section directory), otherwise any integrity failure of the
    /// header, checksum, directory, or the served sections.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, SnapshotError> {
        let path = path.into();
        let map = ByteMap::open(&path).map_err(storage_to_snapshot_error)?;
        let bytes = map.bytes();
        if bytes.len() < V4_HEADER + 8 {
            return Err(SnapshotError::Truncated {
                offset: bytes.len(),
            });
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            });
        }
        let (content, trailer) = bytes.split_at(bytes.len() - 8);
        let stored_checksum = u64::from_le_bytes(trailer.try_into().unwrap());
        let mut h = Fnv64::new();
        h.write_bytes(content);
        let computed = h.finish();
        if computed != stored_checksum {
            return Err(SnapshotError::ChecksumMismatch {
                stored: stored_checksum,
                computed,
            });
        }
        let table = parse_directory(content)?;

        let mut r = Reader::new(&content[table.key.clone()]);
        let graph_fingerprint = r.u64()?;
        let config_digest = r.u64()?;
        let name_len = r.u32()? as usize;
        let algorithm =
            String::from_utf8(r.take(name_len)?.to_vec()).map_err(|_| SnapshotError::Corrupt {
                reason: "algorithm name is not UTF-8".into(),
            })?;
        section_end(&r, "key")?;

        let mut r = Reader::new(&content[table.meta.clone()]);
        let stream_fingerprint = r.u64()?;
        let num_vertices = r.u64()? as usize;
        let certified = read_certified(&mut r)?;
        let size_bound = read_opt_f64(&mut r)?;
        read_congest(&mut r)?;
        section_end(&r, "meta")?;

        // Record count without decoding the stream: the section's leading
        // u64.
        let mut r = Reader::new(&content[table.records.clone()]);
        let num_records = r.count()?;

        // Structural validation of the served index, so Dijkstra over it
        // can never read out of bounds: declared lengths consistent,
        // offsets monotone and ending at the adjacency length, every
        // neighbor id in range.
        let emu = table.emu.clone();
        let mut r = Reader::new(&content[emu.clone()]);
        let n = r.u64()? as usize;
        let m = r.u64()? as usize;
        let adj_len = r.u64()? as usize;
        if n != num_vertices {
            return Err(SnapshotError::Corrupt {
                reason: format!("emulator CSR has {n} vertices, meta declares {num_vertices}"),
            });
        }
        if Some(adj_len) != m.checked_mul(2) {
            return Err(SnapshotError::Corrupt {
                reason: format!("emulator CSR adjacency length {adj_len} is not 2·{m}"),
            });
        }
        let expected_len = 24 + 8 * (n + 1) + 16 * adj_len;
        if emu.len() != expected_len {
            return Err(SnapshotError::Corrupt {
                reason: format!(
                    "emulator CSR section is {} bytes, layout requires {expected_len}",
                    emu.len()
                ),
            });
        }
        let emu_offsets_at = emu.start + 24;
        let emu_adj_at = emu_offsets_at + 8 * (n + 1);
        let mut prev = 0u64;
        for i in 0..=n {
            let o = map.u64_at(emu_offsets_at + 8 * i);
            if o < prev || o > adj_len as u64 {
                return Err(SnapshotError::Corrupt {
                    reason: format!("emulator CSR offset {i} is not monotone"),
                });
            }
            prev = o;
        }
        if prev != adj_len as u64 {
            return Err(SnapshotError::Corrupt {
                reason: format!(
                    "emulator CSR offsets end at {prev}, adjacency length is {adj_len}"
                ),
            });
        }
        for i in 0..adj_len {
            let nb = map.u64_at(emu_adj_at + 16 * i);
            if nb >= n as u64 {
                return Err(SnapshotError::Corrupt {
                    reason: format!("emulator CSR neighbor {nb} out of range for n={n}"),
                });
            }
        }

        Ok(MappedSnapshot {
            map,
            path,
            key: CacheKey {
                graph_fingerprint,
                algorithm,
                config_digest,
            },
            stream_fingerprint,
            num_vertices,
            num_edges: m,
            num_records,
            certified,
            size_bound,
            emu_offsets_at,
            emu_adj_at,
        })
    }

    /// The file this snapshot is served from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The entry's key, straight from the KEY section.
    pub fn key(&self) -> &CacheKey {
        &self.key
    }

    /// Stored stream fingerprint (the identity of the output).
    pub fn stream_fingerprint(&self) -> u64 {
        self.stream_fingerprint
    }

    /// Emulator vertex count.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Distinct-edge count, from the EMU_CSR header — no record decode.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Insertion-record count, from the RECORDS section header.
    pub fn num_records(&self) -> usize {
        self.num_records
    }

    /// Certified `(α, β)`, when the producing construction certified one.
    pub fn certified(&self) -> Option<(f64, f64)> {
        self.certified
    }

    /// Proven size bound, when known.
    pub fn size_bound(&self) -> Option<f64> {
        self.size_bound
    }

    /// Whether the file is OS-mapped (`false`: the paged fallback).
    pub fn is_mapped(&self) -> bool {
        self.map.is_mapped()
    }

    /// Full verification — the same decode the cache integrity pass runs,
    /// including the record-stream fingerprint and the byte-compare of the
    /// served EMU_CSR section against the records.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] the full decode reports.
    pub fn verify(&self) -> Result<(), SnapshotError> {
        Snapshot::decode(self.map.bytes()).map(|_| ())
    }

    /// Converts this handle into its Dijkstra-ready [`MappedEmulator`].
    pub fn into_emulator(self) -> MappedEmulator {
        MappedEmulator {
            map: self.map,
            num_vertices: self.num_vertices,
            num_edges: self.num_edges,
            offsets_at: self.emu_offsets_at,
            adj_at: self.emu_adj_at,
        }
    }

    /// Opens an independent [`MappedEmulator`] over the same file,
    /// re-validating it (a file swapped out under this handle is caught,
    /// never trusted).
    ///
    /// # Errors
    ///
    /// Any open-time failure, plus [`SnapshotError::FingerprintMismatch`]
    /// when the file no longer holds the stream this handle indexed.
    pub fn emulator(&self) -> Result<MappedEmulator, SnapshotError> {
        let reopened = MappedSnapshot::open(&self.path)?;
        if reopened.stream_fingerprint != self.stream_fingerprint {
            return Err(SnapshotError::FingerprintMismatch {
                stored: self.stream_fingerprint,
                recomputed: reopened.stream_fingerprint,
            });
        }
        Ok(reopened.into_emulator())
    }
}

/// An emulator served straight from a v4 snapshot's [`SECTION_EMU_CSR`]
/// bytes: Dijkstra walks the mapped offset/adjacency arrays, so answering
/// queries holds `O(n)` distance state but never the `O(m)` structure on
/// the heap. Distances are shortest-path distances over exactly the edge
/// set the heap [`Emulator`] holds, and shortest distances are unique —
/// answers are byte-identical to the heap path (the out-of-core
/// conformance suite locks this registry-wide).
#[derive(Debug)]
pub struct MappedEmulator {
    map: ByteMap,
    num_vertices: usize,
    num_edges: usize,
    offsets_at: usize,
    adj_at: usize,
}

impl MappedEmulator {
    /// Opens a v4 snapshot file directly as a served emulator.
    ///
    /// # Errors
    ///
    /// Any [`MappedSnapshot::open`] failure.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, SnapshotError> {
        Ok(MappedSnapshot::open(path)?.into_emulator())
    }

    fn off(&self, v: VertexId) -> usize {
        self.map.u64_at(self.offsets_at + 8 * v) as usize
    }

    /// Emulator vertex count.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Distinct-edge count.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of `v` in the emulator (distinct neighbors — the same count
    /// the heap emulator's adjacency map reports).
    pub fn degree(&self, v: VertexId) -> usize {
        self.off(v + 1) - self.off(v)
    }

    /// Neighbors of `v` with weights, ascending by neighbor id.
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Dist)> + '_ {
        (self.off(v)..self.off(v + 1)).map(move |i| {
            let at = self.adj_at + 16 * i;
            (self.map.u64_at(at) as usize, self.map.u64_at(at + 8))
        })
    }

    /// Whether the underlying file is OS-mapped.
    pub fn is_mapped(&self) -> bool {
        self.map.is_mapped()
    }

    /// Single-source distances in `H` — Dijkstra over the mapped CSR.
    /// Identical output to [`Emulator::distances_from`]: shortest
    /// distances are unique, so the storage layout cannot change them.
    pub fn distances_from(&self, source: VertexId) -> Vec<Option<Dist>> {
        let mut dist: Vec<Option<Dist>> = vec![None; self.num_vertices];
        let mut heap = std::collections::BinaryHeap::new();
        dist[source] = Some(0);
        heap.push(std::cmp::Reverse((0, source)));
        while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
            if dist[v] != Some(d) {
                continue;
            }
            for (nb, w) in self.neighbors(v) {
                let nd = d + w;
                if dist[nb].is_none_or(|cur| nd < cur) {
                    dist[nb] = Some(nd);
                    heap.push(std::cmp::Reverse((nd, nb)));
                }
            }
        }
        dist
    }

    /// Distance between `u` and `v` in `H` (`None` when disconnected).
    pub fn distance(&self, u: VertexId, v: VertexId) -> Option<Dist> {
        self.distances_from(u)[v]
    }
}

/// Where and how [`build_cached`] consults the cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Cache directory (created on first store).
    pub dir: PathBuf,
    /// Consult existing entries (warm hits).
    pub read: bool,
    /// Store fresh builds.
    pub write: bool,
}

impl CacheConfig {
    /// Read-write cache rooted at `dir` — the default mode everywhere.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CacheConfig {
            dir: dir.into(),
            read: true,
            write: true,
        }
    }
}

/// One entry as reported by [`ConstructionCache::ls`] /
/// [`ConstructionCache::verify`].
#[derive(Debug)]
pub struct CacheEntry {
    /// Path of the snapshot file.
    pub path: PathBuf,
    /// File size in bytes.
    pub bytes: u64,
    /// Decoded header + integrity verdict.
    pub detail: Result<CacheEntryDetail, SnapshotError>,
}

/// The healthy half of a [`CacheEntry`].
#[derive(Debug, Clone)]
pub struct CacheEntryDetail {
    /// The entry's key.
    pub key: CacheKey,
    /// Stored (and re-verified) stream fingerprint.
    pub stream_fingerprint: u64,
    /// Emulator vertex count.
    pub num_vertices: usize,
    /// Insertion-record count.
    pub records: usize,
}

/// A directory of construction snapshots.
#[derive(Debug, Clone)]
pub struct ConstructionCache {
    dir: PathBuf,
}

impl ConstructionCache {
    /// A cache rooted at `dir` (not created until the first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ConstructionCache { dir: dir.into() }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Absolute path of the entry for `key`.
    pub fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Loads and fully verifies the entry for `key`. `Ok(None)` is a clean
    /// miss (no file); a present-but-invalid file is an `Err` so callers
    /// can distinguish "cold" from "rotten".
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`], including [`SnapshotError::KeyMismatch`] when
    /// the file decodes to a different key than its name promised.
    pub fn load(&self, key: &CacheKey) -> Result<Option<Snapshot>, SnapshotError> {
        let path = self.entry_path(key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let snap = Snapshot::decode(&bytes)?;
        if snap.key != *key {
            return Err(SnapshotError::KeyMismatch {
                entry: snap.key.to_string(),
                requested: key.to_string(),
            });
        }
        Ok(Some(snap))
    }

    /// Atomically stores `snapshot` (write to a temp file, then rename), so
    /// a concurrent reader never observes a half-written entry.
    ///
    /// Safe under concurrent writers: the temp name carries the pid *and* a
    /// process-wide sequence number, so two threads storing the same key
    /// never interleave writes into one temp file — each publishes a
    /// complete image and the later rename wins (both images are
    /// byte-identical for a deterministic construction anyway).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failures.
    pub fn store(&self, snapshot: &Snapshot) -> Result<PathBuf, SnapshotError> {
        static STORE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        std::fs::create_dir_all(&self.dir)?;
        let path = self.entry_path(&snapshot.key);
        let seq = STORE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = path.with_extension(format!("{EXTENSION}.tmp-{}-{seq}", std::process::id()));
        std::fs::write(&tmp, snapshot.encode())?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Paths of all snapshot files in the directory, name order (an absent
    /// directory is an empty cache).
    fn entry_paths(&self) -> Result<Vec<PathBuf>, SnapshotError> {
        let mut paths = Vec::new();
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(paths),
            Err(e) => return Err(e.into()),
        };
        for entry in entries {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) == Some(EXTENSION) {
                paths.push(path);
            }
        }
        paths.sort();
        Ok(paths)
    }

    /// Inspects every entry: decode + checksum + fingerprint + name/key
    /// consistency. This is the one integrity pass `ls` and `verify` share
    /// with CI.
    ///
    /// Entries are returned sorted by **(algorithm, stream fingerprint,
    /// path)** — decoded content, not directory order — so `usnae cache
    /// ls` output is stable across filesystems and CI log diffs are
    /// byte-comparable. Broken entries sort last, by path.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] when the directory itself is unreadable;
    /// per-entry problems are reported in the entries, not as an `Err`.
    pub fn ls(&self) -> Result<Vec<CacheEntry>, SnapshotError> {
        let mut out = Vec::new();
        for path in self.entry_paths()? {
            let bytes = match std::fs::read(&path) {
                Ok(b) => b,
                Err(e) => {
                    out.push(CacheEntry {
                        path,
                        bytes: 0,
                        detail: Err(e.into()),
                    });
                    continue;
                }
            };
            let len = bytes.len() as u64;
            let detail = Snapshot::decode(&bytes).and_then(|snap| {
                let named = snap.key.file_name();
                let actual = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if named != actual {
                    return Err(SnapshotError::KeyMismatch {
                        entry: named,
                        requested: actual.to_string(),
                    });
                }
                Ok(CacheEntryDetail {
                    stream_fingerprint: snap.stream_fingerprint,
                    num_vertices: snap.num_vertices,
                    records: snap.records.len(),
                    key: snap.key,
                })
            });
            out.push(CacheEntry {
                path,
                bytes: len,
                detail,
            });
        }
        // Filesystem read order (and even the path sort above) is not the
        // contract: sort by decoded (algo, stream fingerprint) so two
        // caches holding the same entries always list identically.
        out.sort_by_cached_key(|e| match &e.detail {
            Ok(d) => (
                0u8,
                d.key.algorithm.clone(),
                d.stream_fingerprint,
                e.path.clone(),
            ),
            Err(_) => (1u8, String::new(), 0, e.path.clone()),
        });
        Ok(out)
    }

    /// [`ls`](Self::ls), keeping only the broken entries — what
    /// `usnae cache verify` prints and CI asserts empty.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] when the directory is unreadable.
    pub fn verify(&self) -> Result<Vec<CacheEntry>, SnapshotError> {
        Ok(self
            .ls()?
            .into_iter()
            .filter(|e| e.detail.is_err())
            .collect())
    }

    /// Deletes every snapshot file — plus any `*.usnae.tmp-*` leftovers
    /// from stores interrupted mid-write, which `ls`/`verify` deliberately
    /// never surface as entries. Returns how many *entries* were removed.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failures.
    pub fn clear(&self) -> Result<usize, SnapshotError> {
        let paths = self.entry_paths()?;
        let n = paths.len();
        for path in paths {
            std::fs::remove_file(path)?;
        }
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(n),
            Err(e) => return Err(e.into()),
        };
        for entry in entries {
            let path = entry?.path();
            let is_stale_tmp = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.contains(&format!(".{EXTENSION}.tmp-")));
            if is_stale_tmp {
                std::fs::remove_file(path)?;
            }
        }
        Ok(n)
    }
}

/// Point-in-time usage and counter snapshot of an [`EvictingCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheUsage {
    /// Entries currently resident (tracked by this handle).
    pub entries: usize,
    /// Bytes currently resident across those entries.
    pub bytes_resident: u64,
    /// Configured byte budget (`None` = unbounded).
    pub budget: Option<u64>,
    /// Warm lookups answered from a resident entry.
    pub hits: u64,
    /// Lookups that found no (valid) entry.
    pub misses: u64,
    /// Snapshots published through this handle.
    pub stores: u64,
    /// Entries unlinked to get back under the budget.
    pub evictions: u64,
}

/// Recency index + counters behind the [`EvictingCache`] mutex.
#[derive(Debug, Default)]
struct EvictState {
    /// Entry file name → size in bytes, for every resident entry.
    sizes: BTreeMap<String, u64>,
    /// Entry file names, least-recently-used first.
    recency: std::collections::VecDeque<String>,
    hits: u64,
    misses: u64,
    stores: u64,
    evictions: u64,
}

impl EvictState {
    /// Moves `name` to the most-recently-used position (inserting it if
    /// unseen).
    fn touch(&mut self, name: &str) {
        if let Some(i) = self.recency.iter().position(|n| n == name) {
            self.recency.remove(i);
        }
        self.recency.push_back(name.to_string());
    }

    fn bytes_resident(&self) -> u64 {
        self.sizes.values().sum()
    }
}

/// A byte-budgeted, LRU-evicting view of a [`ConstructionCache`] — the
/// shared cache the `usnae serve` daemon keeps warm across jobs.
///
/// Three properties the serving layer needs that the plain directory
/// cache deliberately does not provide:
///
/// * **Eviction**: entries are ranked least-recently-used (every `load`,
///   mapped open, or `store` refreshes recency under one mutex, so the
///   order is a deterministic function of the access sequence) and the
///   LRU entry is unlinked whenever resident bytes exceed the budget.
///   The most recently touched entry is never evicted, even when it
///   alone exceeds the budget — a cache that evicted what it just
///   stored could never serve a warm hit.
/// * **Lock-free readers**: the mutex guards only the in-memory index.
///   Readers open published snapshot files directly; eviction unlinks a
///   file, which on POSIX leaves already-open handles (including mmaps)
///   valid. A reader that races an unlink sees a clean miss and
///   rebuilds — read-through, never an error.
/// * **Concurrent-writer safety**: publication is atomic
///   (unique-named temp file + rename, see
///   [`ConstructionCache::store`]), so no reader ever observes a torn
///   snapshot, and same-key writers each publish a complete image.
///
/// Counters (hits/misses/stores/evictions) feed the daemon's `stats`
/// response. The index tracks entries this handle has seen; entries
/// published by other processes join it when first loaded.
#[derive(Debug)]
pub struct EvictingCache {
    inner: ConstructionCache,
    budget: Option<u64>,
    state: std::sync::Mutex<EvictState>,
}

impl EvictingCache {
    /// Opens a budgeted cache over `dir`, seeding the recency index from
    /// the entries already on disk (file-name order — deterministic on
    /// every filesystem) and evicting down to `budget` immediately.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] when the directory exists but is unreadable.
    pub fn open(dir: impl Into<PathBuf>, budget: Option<u64>) -> Result<Self, SnapshotError> {
        let inner = ConstructionCache::new(dir);
        let mut state = EvictState::default();
        for path in inner.entry_paths()? {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let bytes = std::fs::metadata(&path)?.len();
            state.sizes.insert(name.to_string(), bytes);
            state.recency.push_back(name.to_string());
        }
        let cache = EvictingCache {
            inner,
            budget,
            state: std::sync::Mutex::new(state),
        };
        {
            let mut state = cache.state.lock().expect("cache state lock");
            cache.evict_to_budget(&mut state);
        }
        Ok(cache)
    }

    /// The underlying directory cache.
    pub fn inner(&self) -> &ConstructionCache {
        &self.inner
    }

    /// Absolute path of the entry for `key` (whether or not resident).
    pub fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.inner.entry_path(key)
    }

    /// Unlinks LRU entries until resident bytes fit the budget, always
    /// sparing the most-recently-used entry. Caller holds the lock.
    fn evict_to_budget(&self, state: &mut EvictState) {
        let Some(budget) = self.budget else { return };
        while state.bytes_resident() > budget && state.recency.len() > 1 {
            let Some(name) = state.recency.pop_front() else {
                break;
            };
            state.sizes.remove(&name);
            state.evictions += 1;
            // A missing file just means a concurrent clear got there
            // first; the index entry is gone either way.
            let _ = std::fs::remove_file(self.inner.dir().join(&name));
        }
    }

    /// Loads and fully verifies the entry for `key`, refreshing its
    /// recency on a hit. `Ok(None)` is a clean miss.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] for a present-but-invalid entry.
    pub fn load(&self, key: &CacheKey) -> Result<Option<Snapshot>, SnapshotError> {
        let loaded = self.inner.load(key);
        let mut state = self.state.lock().expect("cache state lock");
        match &loaded {
            Ok(Some(_)) => {
                let name = key.file_name();
                if !state.sizes.contains_key(&name) {
                    // Published by another handle/process: adopt it.
                    if let Ok(meta) = std::fs::metadata(self.inner.entry_path(key)) {
                        state.sizes.insert(name.clone(), meta.len());
                    }
                }
                state.touch(&name);
                state.hits += 1;
            }
            _ => state.misses += 1,
        }
        loaded
    }

    /// Opens the entry for `key` as a zero-copy [`MappedSnapshot`]
    /// (structural validation only — no record decode), refreshing its
    /// recency. `Ok(None)` is a clean miss; a present-but-unmappable
    /// entry (legacy v2/v3 codec, corruption) also counts as a miss so
    /// the caller rebuilds read-through.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::KeyMismatch`] when the file maps cleanly but
    /// belongs to a different key than its name promised.
    pub fn open_mapped(&self, key: &CacheKey) -> Result<Option<MappedSnapshot>, SnapshotError> {
        let path = self.inner.entry_path(key);
        let mapped = match MappedSnapshot::open(&path) {
            Ok(m) => m,
            Err(_) => {
                self.state.lock().expect("cache state lock").misses += 1;
                return Ok(None);
            }
        };
        if mapped.key() != key {
            return Err(SnapshotError::KeyMismatch {
                entry: mapped.key().to_string(),
                requested: key.to_string(),
            });
        }
        let mut state = self.state.lock().expect("cache state lock");
        let name = key.file_name();
        if !state.sizes.contains_key(&name) {
            if let Ok(meta) = std::fs::metadata(&path) {
                state.sizes.insert(name.clone(), meta.len());
            }
        }
        state.touch(&name);
        state.hits += 1;
        Ok(Some(mapped))
    }

    /// Atomically publishes `snapshot`, indexes it as most recently used,
    /// and evicts LRU entries until the budget holds again.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failures.
    pub fn store(&self, snapshot: &Snapshot) -> Result<PathBuf, SnapshotError> {
        let path = self.inner.store(snapshot)?;
        // A concurrent store of another key can evict this entry between
        // our rename and this stat; index the encoded size then — the
        // entry just becomes an ordinary read-through miss later.
        let bytes = std::fs::metadata(&path)
            .map(|m| m.len())
            .unwrap_or_else(|_| snapshot.encode().len() as u64);
        let name = snapshot.key.file_name();
        let mut state = self.state.lock().expect("cache state lock");
        state.sizes.insert(name.clone(), bytes);
        state.touch(&name);
        state.stores += 1;
        self.evict_to_budget(&mut state);
        Ok(path)
    }

    /// The current usage/counter snapshot (what the daemon's `stats`
    /// response reports).
    pub fn usage(&self) -> CacheUsage {
        let state = self.state.lock().expect("cache state lock");
        CacheUsage {
            entries: state.sizes.len(),
            bytes_resident: state.bytes_resident(),
            budget: self.budget,
            hits: state.hits,
            misses: state.misses,
            stores: state.stores,
            evictions: state.evictions,
        }
    }

    /// Read-through cached build honoring the budget: a verified warm
    /// entry is loaded (refreshing recency), anything else — cold,
    /// evicted, or rotten — rebuilds and republishes, evicting as
    /// needed. Semantics otherwise match [`build_cached`]; traced
    /// configs bypass the cache entirely.
    ///
    /// # Errors
    ///
    /// [`BuildError`] from the underlying construction, or
    /// [`BuildError::Cache`] when the fresh snapshot cannot be stored.
    pub fn build_cached(
        &self,
        construction: &dyn Construction,
        g: &Graph,
        cfg: &BuildConfig,
    ) -> Result<BuildOutput, BuildError> {
        cfg.validate().map_err(BuildError::Param)?;
        if cfg.traced {
            return construction.build(g, cfg);
        }
        let t0 = Instant::now();
        let key = CacheKey::new(g, construction.name(), cfg);
        if let Ok(Some(snap)) = self.load(&key) {
            return Ok(snap.into_output(construction.name(), cfg.threads, t0.elapsed()));
        }
        let mut out = construction.build(g, cfg)?;
        out.stats.cache = CacheStatus::Miss;
        self.store(&Snapshot::from_output(key, &out))
            .map_err(BuildError::Cache)?;
        Ok(out)
    }
}

/// Read-through cached build: the one entry point every consumer
/// (builder, CLI, eval, bench) shares.
///
/// * Traced configs bypass the cache entirely (snapshots store no
///   [`Trace`](crate::api::Trace)); `stats.cache` stays [`CacheStatus::Uncached`].
/// * A warm hit is accepted only after full verification (checksum, key,
///   recomputed stream fingerprint); the returned output has
///   `stats.cache == Hit` and an empty phase list — no phase work ran.
/// * A cold or *rotten* entry falls back to a real build; with `write`
///   enabled the fresh snapshot replaces the entry and `stats.cache` is
///   [`CacheStatus::Miss`].
///
/// # Errors
///
/// [`BuildError`] from the underlying construction, or
/// [`BuildError::Cache`] when a fresh snapshot cannot be stored (a cache
/// the user asked for that silently drops writes would defeat the warm
/// runs they're setting up).
pub fn build_cached(
    construction: &dyn Construction,
    g: &Graph,
    cfg: &BuildConfig,
    cache_cfg: &CacheConfig,
) -> Result<BuildOutput, BuildError> {
    cfg.validate().map_err(BuildError::Param)?;
    if cfg.traced {
        return construction.build(g, cfg);
    }
    let t0 = Instant::now();
    let key = CacheKey::new(g, construction.name(), cfg);
    let cache = ConstructionCache::new(&cache_cfg.dir);
    if cache_cfg.read {
        // A decode/verify failure is deliberately not fatal: the entry is
        // stale bytes, the rebuild below overwrites it.
        if let Ok(Some(snap)) = cache.load(&key) {
            return Ok(snap.into_output(construction.name(), cfg.threads, t0.elapsed()));
        }
    }
    let mut out = construction.build(g, cfg)?;
    out.stats.cache = CacheStatus::Miss;
    if cache_cfg.write {
        cache
            .store(&Snapshot::from_output(key, &out))
            .map_err(BuildError::Cache)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Algorithm;
    use usnae_graph::generators;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("usnae-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_output() -> (Graph, BuildOutput, CacheKey) {
        let g = generators::gnp_connected(60, 0.1, 3).unwrap();
        let cfg = BuildConfig::default();
        let c = Algorithm::Centralized.construction();
        let out = c.build(&g, &cfg).unwrap();
        let key = CacheKey::new(&g, c.name(), &cfg);
        (g, out, key)
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        let (_, out, key) = sample_output();
        let snap = Snapshot::from_output(key, &out);
        let decoded = Snapshot::decode(&snap.encode()).unwrap();
        assert_eq!(snap, decoded);
        assert_eq!(
            decoded.rebuild_emulator().provenance(),
            out.emulator.provenance()
        );
    }

    #[test]
    fn partitioned_build_stats_survive_the_codec() {
        let g = generators::gnp_connected(60, 0.1, 3).unwrap();
        let cfg = BuildConfig {
            shards: 4,
            partition: usnae_graph::partition::PartitionPolicy::DegreeBalanced,
            ..BuildConfig::default()
        };
        let c = Algorithm::Centralized.construction();
        let out = c.build(&g, &cfg).unwrap();
        assert_eq!(
            out.stats.shards.len(),
            4,
            "partitioned build records shards"
        );
        let key = CacheKey::new(&g, c.name(), &cfg);
        let snap = Snapshot::from_output(key, &out);
        let decoded = Snapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded.stats.shards, out.stats.shards);
        assert_eq!(decoded, snap);
    }

    fn worker_output() -> (Graph, BuildOutput, CacheKey) {
        let g = generators::gnp_connected(60, 0.1, 3).unwrap();
        let cfg = BuildConfig {
            shards: 3,
            threads: 2,
            transport: TransportKind::Channel,
            ..BuildConfig::default()
        };
        let c = Algorithm::Centralized.construction();
        let out = c.build(&g, &cfg).unwrap();
        let key = CacheKey::new(&g, c.name(), &cfg);
        (g, out, key)
    }

    #[test]
    fn worker_build_stats_survive_the_codec() {
        let (_, out, key) = worker_output();
        assert_eq!(out.stats.transport, TransportKind::Channel);
        let measured = out.stats.messages.clone().expect("worker build measures");
        assert!(measured.rounds > 0 && measured.messages > 0);
        let snap = Snapshot::from_output(key, &out);
        let decoded = Snapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded.stats.transport, TransportKind::Channel);
        assert_eq!(decoded.stats.messages, Some(measured));
        assert_eq!(decoded, snap);
    }

    #[test]
    fn v2_snapshots_remain_readable_without_worker_stats() {
        // A genuine version-2 file (pre-transport codec): everything
        // round-trips except the v3 tail, which decodes to its v2
        // defaults — transport `inproc`, no message stats.
        let (_, out, key) = worker_output();
        let snap = Snapshot::from_output(key, &out);
        let v2 = snap.encode_version(2);
        assert_eq!(v2[8], 2, "version byte is little-endian 2");
        let decoded = Snapshot::decode(&v2).unwrap();
        assert_eq!(decoded.stats.transport, TransportKind::Inproc);
        assert_eq!(decoded.stats.messages, None);
        assert_eq!(decoded.records, snap.records);
        assert_eq!(decoded.stream_fingerprint, snap.stream_fingerprint);
        assert_eq!(decoded.stats.shards, snap.stats.shards);
        assert_eq!(
            decoded.rebuild_emulator().provenance(),
            out.emulator.provenance()
        );
    }

    #[test]
    fn encoding_below_min_version_is_refused() {
        let (_, out, key) = sample_output();
        let snap = Snapshot::from_output(key, &out);
        let err = std::panic::catch_unwind(|| snap.encode_version(MIN_VERSION - 1));
        assert!(err.is_err(), "v1 is not encodable");
    }

    #[test]
    fn decode_rejects_garbage_with_typed_errors() {
        let (_, out, key) = sample_output();
        let good = Snapshot::from_output(key, &out).encode();

        assert!(matches!(
            Snapshot::decode(b"not a snapshot at all....."),
            Err(SnapshotError::BadMagic)
        ));
        assert!(matches!(
            Snapshot::decode(&good[..5]),
            Err(SnapshotError::Truncated { .. })
        ));
        // Version bump.
        let mut versioned = good.clone();
        versioned[8] = 0xFF;
        assert!(matches!(
            Snapshot::decode(&versioned),
            Err(SnapshotError::UnsupportedVersion { found, supported })
                if found != VERSION && supported == VERSION
        ));
        // Flip one payload byte: checksum catches it.
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(matches!(
            Snapshot::decode(&flipped),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        // Truncate mid-records.
        assert!(matches!(
            Snapshot::decode(&good[..good.len() / 2]),
            Err(SnapshotError::Truncated { .. }) | Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    /// Recomputes the trailing whole-file checksum after a tamper, so the
    /// corruption reaches the section parsers instead of the checksum gate.
    fn repatch_checksum(bytes: &mut [u8]) {
        let body = bytes.len() - 8;
        let mut h = Fnv64::new();
        h.write_bytes(&bytes[..body]);
        let sum = h.finish().to_le_bytes();
        bytes[body..].copy_from_slice(&sum);
    }

    #[test]
    fn v3_snapshots_round_trip_fully() {
        // v3 (pre-directory) carries everything v4 does except the
        // emulator CSR section; the decoded value is identical.
        let (_, out, key) = worker_output();
        let snap = Snapshot::from_output(key, &out);
        let v3 = snap.encode_version(3);
        assert_eq!(v3[8], 3, "version byte is little-endian 3");
        let decoded = Snapshot::decode(&v3).unwrap();
        assert_eq!(decoded, snap);
    }

    #[test]
    fn v4_layout_has_a_well_formed_directory() {
        let (_, out, key) = sample_output();
        let good = Snapshot::from_output(key, &out).encode();
        assert_eq!(good[8], 4, "default encoding is v4");
        let count = u32::from_le_bytes(good[12..16].try_into().unwrap());
        assert_eq!(count, 5);
        let mut prev_end = (V4_HEADER + 5 * DIR_ENTRY) as u64;
        for (i, &id) in SECTION_IDS.iter().enumerate() {
            let at = V4_HEADER + i * DIR_ENTRY;
            let entry_id = u64::from_le_bytes(good[at..at + 8].try_into().unwrap());
            let off = u64::from_le_bytes(good[at + 8..at + 16].try_into().unwrap());
            let len = u64::from_le_bytes(good[at + 16..at + 24].try_into().unwrap());
            assert_eq!(entry_id, id);
            assert_eq!(off % 8, 0, "section {id} is 8-aligned");
            assert!(off >= prev_end, "section {id} does not overlap");
            prev_end = off + len;
        }
        assert_eq!(
            prev_end as usize + 8,
            good.len(),
            "last section runs to the checksum trailer"
        );
    }

    #[test]
    fn v4_section_directory_corruption_is_typed() {
        let (_, out, key) = sample_output();
        let good = Snapshot::from_output(key, &out).encode();

        // Each tamper is re-checksummed so the directory parser, not the
        // checksum gate, must catch it.
        let corrupt = |mutate: &dyn Fn(&mut Vec<u8>)| {
            let mut bytes = good.clone();
            mutate(&mut bytes);
            repatch_checksum(&mut bytes);
            Snapshot::decode(&bytes)
        };
        type Tamper = Box<dyn Fn(&mut Vec<u8>)>;
        let cases: Vec<(&str, Tamper)> = vec![
            ("wrong section count", Box::new(|b: &mut Vec<u8>| b[12] = 7)),
            (
                "wrong section id",
                Box::new(|b: &mut Vec<u8>| b[V4_HEADER] = 0x99),
            ),
            (
                "misaligned offset",
                Box::new(|b: &mut Vec<u8>| b[V4_HEADER + 8] ^= 0x01),
            ),
            (
                "overlapping sections",
                Box::new(|b: &mut Vec<u8>| {
                    // Pull the META section's offset back onto KEY's range.
                    let at = V4_HEADER + DIR_ENTRY + 8;
                    let off = u64::from_le_bytes(b[at..at + 8].try_into().unwrap());
                    b[at..at + 8].copy_from_slice(&(off - 8).to_le_bytes());
                }),
            ),
            (
                "length past end of file",
                Box::new(|b: &mut Vec<u8>| {
                    let at = V4_HEADER + 4 * DIR_ENTRY + 16;
                    let len = u64::from_le_bytes(b[at..at + 8].try_into().unwrap());
                    b[at..at + 8].copy_from_slice(&(len + 8).to_le_bytes());
                }),
            ),
            (
                "emulator CSR drifted from the records",
                Box::new(|b: &mut Vec<u8>| {
                    let at = V4_HEADER + 4 * DIR_ENTRY + 8;
                    let emu_off = u64::from_le_bytes(b[at..at + 8].try_into().unwrap()) as usize;
                    // Flip a neighbor byte inside the CSR body.
                    b[emu_off + 24] ^= 0x01;
                }),
            ),
        ];
        for (what, mutate) in &cases {
            assert!(
                matches!(corrupt(mutate.as_ref()), Err(SnapshotError::Corrupt { .. })),
                "{what} must decode to a typed Corrupt error"
            );
        }
        // Control: the repatch helper itself keeps a good file good.
        let mut untouched = good.clone();
        repatch_checksum(&mut untouched);
        assert!(Snapshot::decode(&untouched).is_ok());
    }

    #[test]
    fn mapped_snapshot_round_trips_and_serves_identical_distances() {
        let dir = temp_dir("mapped-snap");
        std::fs::create_dir_all(&dir).unwrap();
        let (_, out, key) = sample_output();
        let snap = Snapshot::from_output(key, &out);
        let path = dir.join("entry.usnae");
        std::fs::write(&path, snap.encode()).unwrap();

        let mapped = MappedSnapshot::open(&path).unwrap();
        assert_eq!(mapped.key(), &snap.key);
        assert_eq!(mapped.stream_fingerprint(), snap.stream_fingerprint);
        assert_eq!(mapped.num_vertices(), snap.num_vertices);
        assert_eq!(mapped.num_records(), snap.records.len());
        assert_eq!(mapped.certified(), snap.certified);
        assert_eq!(mapped.size_bound(), snap.size_bound);
        mapped.verify().unwrap();

        let heap = out.emulator;
        let em = mapped.emulator().unwrap();
        assert_eq!(em.num_vertices(), heap.num_vertices());
        assert_eq!(em.num_edges(), heap.num_edges());
        for v in 0..heap.num_vertices() {
            assert_eq!(em.degree(v), heap.graph().degree(v), "degree({v})");
            assert_eq!(em.distances_from(v), heap.distances_from(v), "sssp({v})");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mapped_snapshot_refuses_pre_v4_and_tampered_files() {
        let dir = temp_dir("mapped-refuse");
        std::fs::create_dir_all(&dir).unwrap();
        let (_, out, key) = sample_output();
        let snap = Snapshot::from_output(key, &out);

        // Pre-v4 files have no directory to serve from.
        let v3_path = dir.join("v3.usnae");
        std::fs::write(&v3_path, snap.encode_version(3)).unwrap();
        assert!(matches!(
            MappedSnapshot::open(&v3_path),
            Err(SnapshotError::UnsupportedVersion { found: 3, .. })
        ));

        // Bit rot anywhere fails the open-time checksum.
        let mut bytes = snap.encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        let rot_path = dir.join("rot.usnae");
        std::fs::write(&rot_path, &bytes).unwrap();
        assert!(matches!(
            MappedSnapshot::open(&rot_path),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));

        // A drifted CSR body that survives re-checksumming is still caught
        // by the open-time structural scan or the serve-time byte compare.
        let mut drifted = snap.encode();
        let at = V4_HEADER + 4 * DIR_ENTRY + 8;
        let emu_off = u64::from_le_bytes(drifted[at..at + 8].try_into().unwrap()) as usize;
        drifted[emu_off] ^= 0x01; // corrupt the stored vertex count
        repatch_checksum(&mut drifted);
        let drift_path = dir.join("drift.usnae");
        std::fs::write(&drift_path, &drifted).unwrap();
        assert!(matches!(
            MappedSnapshot::open(&drift_path),
            Err(SnapshotError::Corrupt { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_load_hits_and_misses() {
        let dir = temp_dir("store-load");
        let cache = ConstructionCache::new(&dir);
        let (_, out, key) = sample_output();
        assert!(cache.load(&key).unwrap().is_none(), "cold cache misses");
        cache
            .store(&Snapshot::from_output(key.clone(), &out))
            .unwrap();
        let snap = cache.load(&key).unwrap().expect("warm cache hits");
        assert_eq!(snap.stream_fingerprint, out.stream_fingerprint());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_flags_corrupt_entries_and_clear_removes() {
        let dir = temp_dir("verify");
        let cache = ConstructionCache::new(&dir);
        let (_, out, key) = sample_output();
        let path = cache
            .store(&Snapshot::from_output(key.clone(), &out))
            .unwrap();
        assert!(cache.verify().unwrap().is_empty(), "fresh entry verifies");
        assert_eq!(cache.ls().unwrap().len(), 1);
        // Corrupt the file in place.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let broken = cache.verify().unwrap();
        assert_eq!(broken.len(), 1);
        assert!(matches!(
            broken[0].detail,
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        assert_eq!(cache.clear().unwrap(), 1);
        assert!(cache.ls().unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_sweeps_interrupted_store_leftovers() {
        let dir = temp_dir("tmp-sweep");
        let cache = ConstructionCache::new(&dir);
        let (_, out, key) = sample_output();
        cache.store(&Snapshot::from_output(key, &out)).unwrap();
        // Simulate a store killed between write and rename.
        let stale = dir.join(format!("orphan.{EXTENSION}.tmp-99999"));
        std::fs::write(&stale, b"half-written").unwrap();
        // ls/verify never surface the tmp file as an entry...
        assert_eq!(cache.ls().unwrap().len(), 1);
        assert!(cache.verify().unwrap().is_empty());
        // ...but clear removes it along with the entries.
        assert_eq!(cache.clear().unwrap(), 1);
        assert!(!stale.exists(), "stale tmp file must be swept");
        assert!(cache.ls().unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ls_orders_entries_by_algo_then_fingerprint() {
        let dir = temp_dir("ls-order");
        let cache = ConstructionCache::new(&dir);
        // Multiple algorithms x multiple graphs, stored in scrambled order.
        for seed in [9u64, 2, 5] {
            let g = generators::gnp_connected(40, 0.15, seed).unwrap();
            let cfg = BuildConfig::default();
            for algo in [Algorithm::Spanner, Algorithm::Centralized] {
                let c = algo.construction();
                let out = c.build(&g, &cfg).unwrap();
                cache
                    .store(&Snapshot::from_output(
                        CacheKey::new(&g, c.name(), &cfg),
                        &out,
                    ))
                    .unwrap();
            }
        }
        let entries = cache.ls().unwrap();
        assert_eq!(entries.len(), 6);
        let keys: Vec<(String, u64)> = entries
            .iter()
            .map(|e| {
                let d = e.detail.as_ref().unwrap();
                (d.key.algorithm.clone(), d.stream_fingerprint)
            })
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "ls must sort by (algo, fingerprint)");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn build_cached_cold_then_warm() {
        let dir = temp_dir("cold-warm");
        let cache_cfg = CacheConfig::new(&dir);
        let g = generators::gnp_connected(60, 0.1, 7).unwrap();
        let cfg = BuildConfig::default();
        let c = Algorithm::FastCentralized.construction();

        let cold = build_cached(c.as_ref(), &g, &cfg, &cache_cfg).unwrap();
        assert_eq!(cold.stats.cache, CacheStatus::Miss);
        assert!(!cold.stats.phases.is_empty(), "cold build ran its phases");

        let warm = build_cached(c.as_ref(), &g, &cfg, &cache_cfg).unwrap();
        assert_eq!(warm.stats.cache, CacheStatus::Hit);
        assert!(warm.stats.phases.is_empty(), "warm hit skipped phase work");
        assert_eq!(warm.stream_fingerprint(), cold.stream_fingerprint());
        assert_eq!(
            warm.emulator.provenance(),
            cold.emulator.provenance(),
            "hit is byte-identical to the cold build"
        );
        assert_eq!(warm.certified, cold.certified);
        assert_eq!(warm.size_bound, cold.size_bound);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn traced_configs_bypass_the_cache() {
        let dir = temp_dir("traced");
        let cache_cfg = CacheConfig::new(&dir);
        let g = generators::grid2d(6, 6).unwrap();
        let cfg = BuildConfig {
            traced: true,
            ..BuildConfig::default()
        };
        let c = Algorithm::Centralized.construction();
        let out = build_cached(c.as_ref(), &g, &cfg, &cache_cfg).unwrap();
        assert_eq!(out.stats.cache, CacheStatus::Uncached);
        assert!(out.trace.is_some(), "trace request honored");
        assert!(
            ConstructionCache::new(&dir).ls().unwrap().is_empty(),
            "nothing stored for traced builds"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotten_entry_falls_back_to_rebuild_and_heals() {
        let dir = temp_dir("rotten");
        let cache_cfg = CacheConfig::new(&dir);
        let g = generators::gnp_connected(50, 0.12, 9).unwrap();
        let cfg = BuildConfig::default();
        let c = Algorithm::Centralized.construction();
        let cold = build_cached(c.as_ref(), &g, &cfg, &cache_cfg).unwrap();
        // Rot the entry.
        let key = CacheKey::new(&g, c.name(), &cfg);
        let path = ConstructionCache::new(&dir).entry_path(&key);
        std::fs::write(&path, b"rotten").unwrap();
        let rebuilt = build_cached(c.as_ref(), &g, &cfg, &cache_cfg).unwrap();
        assert_eq!(rebuilt.stats.cache, CacheStatus::Miss, "rot is a miss");
        assert_eq!(rebuilt.stream_fingerprint(), cold.stream_fingerprint());
        // And the store healed the entry.
        let warm = build_cached(c.as_ref(), &g, &cfg, &cache_cfg).unwrap();
        assert_eq!(warm.stats.cache, CacheStatus::Hit);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_only_and_write_only_modes() {
        let dir = temp_dir("modes");
        let g = generators::gnp_connected(50, 0.12, 2).unwrap();
        let cfg = BuildConfig::default();
        let c = Algorithm::Centralized.construction();
        let read_only = CacheConfig {
            write: false,
            ..CacheConfig::new(&dir)
        };
        let out = build_cached(c.as_ref(), &g, &cfg, &read_only).unwrap();
        assert_eq!(out.stats.cache, CacheStatus::Miss);
        assert!(
            ConstructionCache::new(&dir).ls().unwrap().is_empty(),
            "read-only stores nothing"
        );
        let write_only = CacheConfig {
            read: false,
            ..CacheConfig::new(&dir)
        };
        build_cached(c.as_ref(), &g, &cfg, &write_only).unwrap();
        let again = build_cached(c.as_ref(), &g, &cfg, &write_only).unwrap();
        assert_eq!(
            again.stats.cache,
            CacheStatus::Miss,
            "write-only never reads"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
