//! Fingerprint-keyed construction cache with a versioned on-disk snapshot
//! codec.
//!
//! For the oracle/query workloads the paper's structures serve, the build
//! is the dominant cost and should be paid **once per
//! `(graph, algorithm, config)`**. The determinism guarantee (see
//! [`crate::api`]) makes that safe: every registry construction is a pure
//! function of `(graph, BuildConfig)`, so a stored output is not a
//! heuristic approximation of a rebuild — it *is* the rebuild, and the
//! stored [`stream fingerprint`](crate::emulator::stream_fingerprint) lets
//! a load prove it.
//!
//! Three layers:
//!
//! * [`Snapshot`] + the zero-dependency binary codec
//!   ([`Snapshot::encode`] / [`Snapshot::decode`]): magic, version, key
//!   fingerprints, the exact insertion stream with provenance, certified
//!   stretch, size bound, CONGEST stats, build stats, and a whole-file
//!   checksum. Corrupt, truncated, or version-mismatched files decode to a
//!   typed [`SnapshotError`], never a panic.
//! * [`ConstructionCache`]: a directory of snapshots keyed by
//!   `(graph fingerprint, algorithm, config digest)` with `store` / `load`
//!   / [`ls`](ConstructionCache::ls) / [`clear`](ConstructionCache::clear)
//!   / [`verify`](ConstructionCache::verify) — the same integrity check the
//!   CLI (`usnae cache verify`) and CI run.
//! * [`build_cached`]: the read-through wrapper every consumer uses
//!   (builder `.cache_dir(..)`, CLI `--cache`, eval/bench sweeps). A hit is
//!   accepted only after the decoded stream's recomputed fingerprint
//!   matches the stored one; anything less rebuilds.
//!
//! Traced builds (`BuildConfig::traced`) bypass the cache: snapshots
//! deliberately store the insertion stream, not the in-memory [`Trace`](crate::api::Trace)
//! families, so a hit could not honor the trace request. Everything a
//! query workload consumes — emulator, certification, congest stats — is
//! preserved exactly.

use crate::api::{BuildConfig, BuildError, BuildOutput, CongestStats, Construction};
use crate::emulator::{stream_fingerprint, EdgeKind, EdgeProvenance, Emulator};
use crate::exec::{
    BuildStats, CacheStatus, MessageStats, PairStats, PhaseTiming, ShardTiming, TransportKind,
};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use usnae_congest::Metrics;
use usnae_graph::metrics::Fnv64;
use usnae_graph::{Graph, WeightedEdge};

/// Snapshot file magic: identifies the format before any parsing.
pub const MAGIC: &[u8; 8] = b"USNAESNP";

/// Current codec version. Bump on any layout change; old files then fail
/// with [`SnapshotError::UnsupportedVersion`] instead of misparsing.
/// (v2 added the per-shard timing section of partitioned builds; v3 added
/// the transport byte and the measured [`MessageStats`] of worker-pool
/// builds. v2 files remain readable: their transport is `inproc`, their
/// message stats `None`.)
pub const VERSION: u32 = 3;

/// Oldest codec version [`Snapshot::decode`] still reads.
pub const MIN_VERSION: u32 = 2;

/// Extension of snapshot files inside a cache directory.
pub const EXTENSION: &str = "usnae";

/// Typed failures of the snapshot codec and cache directory operations.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The file's codec version is not readable by this binary.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Version this binary writes and reads.
        supported: u32,
    },
    /// The file ended before the declared content (truncation).
    Truncated {
        /// Byte offset at which the reader ran dry.
        offset: usize,
    },
    /// The whole-file checksum did not match — bit rot or tampering.
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        stored: u64,
        /// Checksum recomputed over the content.
        computed: u64,
    },
    /// Structurally invalid content (bad edge-kind byte, endpoint out of
    /// range, non-finite stored float, oversized declared length).
    Corrupt {
        /// Human-readable reason.
        reason: String,
    },
    /// The decoded stream does not reproduce the stored stream
    /// fingerprint — the entry is internally inconsistent.
    FingerprintMismatch {
        /// Fingerprint stored in the header.
        stored: u64,
        /// Fingerprint recomputed from the decoded records.
        recomputed: u64,
    },
    /// The entry decodes cleanly but belongs to a different
    /// `(graph, algorithm, config)` key than the caller asked for — a
    /// stale or misfiled entry.
    KeyMismatch {
        /// What the entry claims to be.
        entry: String,
        /// What the caller asked for.
        requested: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o failure: {e}"),
            SnapshotError::BadMagic => write!(f, "not a usnae snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot version {found} not supported (this binary reads version {supported})"
            ),
            SnapshotError::Truncated { offset } => {
                write!(f, "snapshot truncated at byte {offset}")
            }
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch (stored {stored:016x}, computed {computed:016x})"
            ),
            SnapshotError::Corrupt { reason } => write!(f, "snapshot corrupt: {reason}"),
            SnapshotError::FingerprintMismatch { stored, recomputed } => write!(
                f,
                "stream fingerprint mismatch (stored {stored:016x}, recomputed {recomputed:016x})"
            ),
            SnapshotError::KeyMismatch { entry, requested } => write!(
                f,
                "snapshot key mismatch (entry is {entry}, requested {requested})"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// The cache key: what [`build_cached`] hashes a build request down to.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Canonical input-graph fingerprint
    /// ([`usnae_graph::metrics::fingerprint`]).
    pub graph_fingerprint: u64,
    /// Registry name of the construction.
    pub algorithm: String,
    /// Output-relevant config digest ([`BuildConfig::stable_digest`]).
    pub config_digest: u64,
}

impl CacheKey {
    /// Derives the key for one build request.
    pub fn new(g: &Graph, algorithm: &str, cfg: &BuildConfig) -> Self {
        CacheKey {
            graph_fingerprint: usnae_graph::metrics::fingerprint(g),
            algorithm: algorithm.to_string(),
            config_digest: cfg.stable_digest(),
        }
    }

    /// The entry's file name inside a cache directory.
    pub fn file_name(&self) -> String {
        format!(
            "{}-g{:016x}-c{:016x}.{EXTENSION}",
            self.algorithm, self.graph_fingerprint, self.config_digest
        )
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} g={:016x} c={:016x}",
            self.algorithm, self.graph_fingerprint, self.config_digest
        )
    }
}

/// A serializable image of one [`BuildOutput`] — everything except the
/// in-memory [`Trace`](crate::api::Trace) families and wall-clock noise.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The key this entry answers.
    pub key: CacheKey,
    /// Fingerprint of the stored insertion stream (the proof obligation on
    /// load).
    pub stream_fingerprint: u64,
    /// Vertex count of the emulator.
    pub num_vertices: usize,
    /// The exact insertion stream with provenance, in insertion order.
    pub records: Vec<(WeightedEdge, EdgeProvenance)>,
    /// Certified `(α, β)`, when the construction certifies one.
    pub certified: Option<(f64, f64)>,
    /// Proven size bound, when known.
    pub size_bound: Option<f64>,
    /// CONGEST stats for simulator-backed builds.
    pub congest: Option<CongestStats>,
    /// Stats of the build that produced the entry (threads, wall clock,
    /// per-phase timings — `cache` is always recorded as `Miss`, the status
    /// of the producing build).
    pub stats: BuildStats,
}

/// Little-endian byte writer with the running whole-file checksum.
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    fn u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    fn u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    fn finish(mut self) -> Vec<u8> {
        let mut h = Fnv64::new();
        h.write_bytes(&self.buf);
        let checksum = h.finish();
        self.buf.extend_from_slice(&checksum.to_le_bytes());
        self.buf
    }
}

/// Bounds-checked little-endian reader; every read can fail with
/// [`SnapshotError::Truncated`].
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(SnapshotError::Truncated { offset: self.pos })?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A `usize` that must also be a plausible in-file count: the codec
    /// never stores more logical records than bytes, so any declared length
    /// beyond the remaining buffer is corruption, not an allocation order.
    fn count(&mut self) -> Result<usize, SnapshotError> {
        let x = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if x > remaining {
            return Err(SnapshotError::Corrupt {
                reason: format!("declared count {x} exceeds remaining {remaining} bytes"),
            });
        }
        Ok(x as usize)
    }
}

fn opt_f64(w: &mut Writer, x: Option<f64>) {
    match x {
        Some(v) => {
            w.u8(1);
            w.u64(v.to_bits());
        }
        None => w.u8(0),
    }
}

fn read_opt_f64(r: &mut Reader) -> Result<Option<f64>, SnapshotError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.f64()?)),
        b => Err(SnapshotError::Corrupt {
            reason: format!("invalid option tag {b}"),
        }),
    }
}

impl Snapshot {
    /// Captures a build output under its key. The stream fingerprint is
    /// computed here, from the same records that are stored, so encode →
    /// decode → verify is closed.
    pub fn from_output(key: CacheKey, out: &BuildOutput) -> Self {
        Snapshot {
            key,
            stream_fingerprint: out.stream_fingerprint(),
            num_vertices: out.emulator.num_vertices(),
            records: out.emulator.provenance().to_vec(),
            certified: out.certified,
            size_bound: out.size_bound,
            congest: out.congest.clone(),
            stats: BuildStats {
                cache: CacheStatus::Miss,
                ..out.stats.clone()
            },
        }
    }

    /// Serializes to the version-3 wire format (trailing FNV-64 checksum
    /// over everything before it).
    pub fn encode(&self) -> Vec<u8> {
        self.encode_version(VERSION)
    }

    /// [`encode`](Self::encode) pinned to an older readable version —
    /// kept so the forward-compat suite can produce genuine old files.
    /// Versions below [`MIN_VERSION`] are not encodable.
    pub fn encode_version(&self, version: u32) -> Vec<u8> {
        assert!(
            (MIN_VERSION..=VERSION).contains(&version),
            "cannot encode codec version {version}"
        );
        let mut w = Writer::new();
        w.bytes(MAGIC);
        w.u32(version);
        w.u64(self.key.graph_fingerprint);
        w.u64(self.key.config_digest);
        w.u32(self.key.algorithm.len() as u32);
        w.bytes(self.key.algorithm.as_bytes());
        w.u64(self.stream_fingerprint);
        w.u64(self.num_vertices as u64);
        w.u64(self.records.len() as u64);
        for (e, p) in &self.records {
            w.u64(e.u as u64);
            w.u64(e.v as u64);
            w.u64(e.weight);
            w.u64(p.phase as u64);
            w.u8(p.kind.code());
            w.u64(p.charged_to as u64);
        }
        match self.certified {
            Some((a, b)) => {
                w.u8(1);
                w.u64(a.to_bits());
                w.u64(b.to_bits());
            }
            None => w.u8(0),
        }
        opt_f64(&mut w, self.size_bound);
        match &self.congest {
            Some(c) => {
                w.u8(1);
                w.u64(c.metrics.rounds);
                w.u64(c.metrics.charged_rounds);
                w.u64(c.metrics.messages);
                w.u64(c.metrics.words);
                w.u64(c.metrics.peak_in_flight);
                w.u64(c.knowledge_checked as u64);
                w.u64(c.knowledge_violations as u64);
            }
            None => w.u8(0),
        }
        w.u64(self.stats.threads as u64);
        w.u64(self.stats.total.as_nanos().min(u128::from(u64::MAX)) as u64);
        w.u64(self.stats.phases.len() as u64);
        for p in &self.stats.phases {
            w.u64(p.phase as u64);
            w.u64(p.duration.as_nanos().min(u128::from(u64::MAX)) as u64);
            w.u64(p.explorations as u64);
        }
        w.u64(self.stats.shards.len() as u64);
        for sh in &self.stats.shards {
            w.u64(sh.shard as u64);
            w.u64(sh.vertices as u64);
            w.u64(sh.local_edges as u64);
            w.u64(sh.cut_edges as u64);
            w.u64(sh.duration.as_nanos().min(u128::from(u64::MAX)) as u64);
        }
        if version >= 3 {
            // v3: the transport the build ran on plus its measured message
            // statistics (worker-pool builds only).
            w.u8(self.stats.transport.code());
            match &self.stats.messages {
                Some(m) => {
                    w.u8(1);
                    w.u64(m.rounds);
                    w.u64(m.messages);
                    w.u64(m.bytes);
                    w.u64(m.pairs.len() as u64);
                    for p in &m.pairs {
                        w.u64(p.src as u64);
                        w.u64(p.dst as u64);
                        w.u64(p.messages);
                        w.u64(p.bytes);
                    }
                }
                None => w.u8(0),
            }
        }
        w.finish()
    }

    /// Decodes and integrity-checks a snapshot.
    ///
    /// Checks, in order: magic, version, checksum over the whole content,
    /// structural validity of every record (edge-kind byte, endpoints in
    /// range), and that the decoded stream reproduces the stored
    /// fingerprint. Any failure is a typed [`SnapshotError`].
    ///
    /// # Errors
    ///
    /// See [`SnapshotError`]; no variant panics.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        // Checksum first: it covers everything, so all later parsing runs
        // on bytes already known to be the writer's.
        if bytes.len() < MAGIC.len() + 4 + 8 {
            return Err(SnapshotError::Truncated {
                offset: bytes.len(),
            });
        }
        let mut r = Reader::new(bytes);
        if r.take(MAGIC.len())? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u32()?;
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            });
        }
        let (content, trailer) = bytes.split_at(bytes.len() - 8);
        let stored_checksum = u64::from_le_bytes(trailer.try_into().unwrap());
        let mut h = Fnv64::new();
        h.write_bytes(content);
        let computed = h.finish();
        if computed != stored_checksum {
            return Err(SnapshotError::ChecksumMismatch {
                stored: stored_checksum,
                computed,
            });
        }
        // Re-read over the checksummed content only, past magic+version.
        let mut r = Reader::new(content);
        r.take(MAGIC.len() + 4)?;
        let graph_fingerprint = r.u64()?;
        let config_digest = r.u64()?;
        let name_len = r.u32()? as usize;
        let algorithm =
            String::from_utf8(r.take(name_len)?.to_vec()).map_err(|_| SnapshotError::Corrupt {
                reason: "algorithm name is not UTF-8".into(),
            })?;
        let stream_fp = r.u64()?;
        let num_vertices = r.u64()? as usize;
        let record_count = r.count()?;
        let mut records = Vec::with_capacity(record_count);
        for i in 0..record_count {
            let u = r.u64()? as usize;
            let v = r.u64()? as usize;
            let weight = r.u64()?;
            let phase = r.u64()? as usize;
            let kind_byte = r.u8()?;
            let charged_to = r.u64()? as usize;
            let kind = EdgeKind::from_code(kind_byte).ok_or_else(|| SnapshotError::Corrupt {
                reason: format!("record {i}: invalid edge-kind byte {kind_byte}"),
            })?;
            if u >= num_vertices || v >= num_vertices || u == v || charged_to >= num_vertices {
                return Err(SnapshotError::Corrupt {
                    reason: format!(
                        "record {i}: endpoints ({u}, {v}) out of range for n={num_vertices}"
                    ),
                });
            }
            records.push((
                WeightedEdge::new(u, v, weight),
                EdgeProvenance {
                    phase,
                    kind,
                    charged_to,
                },
            ));
        }
        let certified = match r.u8()? {
            0 => None,
            1 => {
                let a = r.f64()?;
                let b = r.f64()?;
                if a.is_nan() || b.is_nan() {
                    return Err(SnapshotError::Corrupt {
                        reason: "certified stretch is NaN".into(),
                    });
                }
                Some((a, b))
            }
            b => {
                return Err(SnapshotError::Corrupt {
                    reason: format!("invalid certified tag {b}"),
                })
            }
        };
        let size_bound = read_opt_f64(&mut r)?;
        let congest = match r.u8()? {
            0 => None,
            1 => Some(CongestStats {
                metrics: Metrics {
                    rounds: r.u64()?,
                    charged_rounds: r.u64()?,
                    messages: r.u64()?,
                    words: r.u64()?,
                    peak_in_flight: r.u64()?,
                },
                knowledge_checked: r.u64()? as usize,
                knowledge_violations: r.u64()? as usize,
            }),
            b => {
                return Err(SnapshotError::Corrupt {
                    reason: format!("invalid congest tag {b}"),
                })
            }
        };
        let threads = r.u64()? as usize;
        let total = Duration::from_nanos(r.u64()?);
        let phase_count = r.count()?;
        let mut phases = Vec::with_capacity(phase_count);
        for _ in 0..phase_count {
            phases.push(PhaseTiming {
                phase: r.u64()? as usize,
                duration: Duration::from_nanos(r.u64()?),
                explorations: r.u64()? as usize,
            });
        }
        let shard_count = r.count()?;
        let mut shards = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            shards.push(ShardTiming {
                shard: r.u64()? as usize,
                vertices: r.u64()? as usize,
                local_edges: r.u64()? as usize,
                cut_edges: r.u64()? as usize,
                duration: Duration::from_nanos(r.u64()?),
            });
        }
        // v3 tail; v2 files predate worker transports, so they ran inproc
        // with no message exchange.
        let (transport, messages) = if version >= 3 {
            let code = r.u8()?;
            let transport =
                TransportKind::from_code(code).ok_or_else(|| SnapshotError::Corrupt {
                    reason: format!("invalid transport byte {code}"),
                })?;
            let messages = match r.u8()? {
                0 => None,
                1 => {
                    let rounds = r.u64()?;
                    let total_messages = r.u64()?;
                    let bytes = r.u64()?;
                    let pair_count = r.count()?;
                    let mut pairs = Vec::with_capacity(pair_count);
                    for _ in 0..pair_count {
                        pairs.push(PairStats {
                            src: r.u64()? as usize,
                            dst: r.u64()? as usize,
                            messages: r.u64()?,
                            bytes: r.u64()?,
                        });
                    }
                    Some(MessageStats {
                        rounds,
                        messages: total_messages,
                        bytes,
                        pairs,
                    })
                }
                b => {
                    return Err(SnapshotError::Corrupt {
                        reason: format!("invalid message-stats tag {b}"),
                    })
                }
            };
            (transport, messages)
        } else {
            (TransportKind::Inproc, None)
        };
        if r.pos != content.len() {
            return Err(SnapshotError::Corrupt {
                reason: format!(
                    "{} trailing bytes after declared content",
                    content.len() - r.pos
                ),
            });
        }
        let recomputed = stream_fingerprint(&records);
        if recomputed != stream_fp {
            return Err(SnapshotError::FingerprintMismatch {
                stored: stream_fp,
                recomputed,
            });
        }
        Ok(Snapshot {
            key: CacheKey {
                graph_fingerprint,
                algorithm,
                config_digest,
            },
            stream_fingerprint: stream_fp,
            num_vertices,
            records,
            certified,
            size_bound,
            congest,
            stats: BuildStats {
                threads,
                total,
                phases,
                shards,
                transport,
                messages,
                cache: CacheStatus::Miss,
            },
        })
    }

    /// Replays the stored stream into a live emulator (see
    /// [`Emulator::from_provenance`]).
    pub fn rebuild_emulator(&self) -> Emulator {
        Emulator::from_provenance(self.num_vertices, self.records.iter().cloned())
    }

    /// Converts a verified snapshot into a [`BuildOutput`] for the given
    /// construction. `load_time` becomes `stats.total`; the phase list is
    /// empty and `stats.cache` is [`CacheStatus::Hit`] — a warm hit
    /// visibly skipped all phase work.
    pub fn into_output(
        self,
        algorithm: &'static str,
        threads: usize,
        load_time: Duration,
    ) -> BuildOutput {
        BuildOutput {
            emulator: self.rebuild_emulator(),
            certified: self.certified,
            size_bound: self.size_bound,
            trace: None,
            congest: self.congest,
            stats: BuildStats {
                threads,
                total: load_time,
                phases: Vec::new(),
                shards: Vec::new(),
                // The stored transport/messages describe the producing
                // build — kept on a hit so reports still show what ran.
                transport: self.stats.transport,
                messages: self.stats.messages.clone(),
                cache: CacheStatus::Hit,
            },
            algorithm,
        }
    }
}

/// Where and how [`build_cached`] consults the cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Cache directory (created on first store).
    pub dir: PathBuf,
    /// Consult existing entries (warm hits).
    pub read: bool,
    /// Store fresh builds.
    pub write: bool,
}

impl CacheConfig {
    /// Read-write cache rooted at `dir` — the default mode everywhere.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CacheConfig {
            dir: dir.into(),
            read: true,
            write: true,
        }
    }
}

/// One entry as reported by [`ConstructionCache::ls`] /
/// [`ConstructionCache::verify`].
#[derive(Debug)]
pub struct CacheEntry {
    /// Path of the snapshot file.
    pub path: PathBuf,
    /// File size in bytes.
    pub bytes: u64,
    /// Decoded header + integrity verdict.
    pub detail: Result<CacheEntryDetail, SnapshotError>,
}

/// The healthy half of a [`CacheEntry`].
#[derive(Debug, Clone)]
pub struct CacheEntryDetail {
    /// The entry's key.
    pub key: CacheKey,
    /// Stored (and re-verified) stream fingerprint.
    pub stream_fingerprint: u64,
    /// Emulator vertex count.
    pub num_vertices: usize,
    /// Insertion-record count.
    pub records: usize,
}

/// A directory of construction snapshots.
#[derive(Debug, Clone)]
pub struct ConstructionCache {
    dir: PathBuf,
}

impl ConstructionCache {
    /// A cache rooted at `dir` (not created until the first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ConstructionCache { dir: dir.into() }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Absolute path of the entry for `key`.
    pub fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Loads and fully verifies the entry for `key`. `Ok(None)` is a clean
    /// miss (no file); a present-but-invalid file is an `Err` so callers
    /// can distinguish "cold" from "rotten".
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`], including [`SnapshotError::KeyMismatch`] when
    /// the file decodes to a different key than its name promised.
    pub fn load(&self, key: &CacheKey) -> Result<Option<Snapshot>, SnapshotError> {
        let path = self.entry_path(key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let snap = Snapshot::decode(&bytes)?;
        if snap.key != *key {
            return Err(SnapshotError::KeyMismatch {
                entry: snap.key.to_string(),
                requested: key.to_string(),
            });
        }
        Ok(Some(snap))
    }

    /// Atomically stores `snapshot` (write to a temp file, then rename), so
    /// a concurrent reader never observes a half-written entry.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failures.
    pub fn store(&self, snapshot: &Snapshot) -> Result<PathBuf, SnapshotError> {
        std::fs::create_dir_all(&self.dir)?;
        let path = self.entry_path(&snapshot.key);
        let tmp = path.with_extension(format!("{EXTENSION}.tmp-{}", std::process::id()));
        std::fs::write(&tmp, snapshot.encode())?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Paths of all snapshot files in the directory, name order (an absent
    /// directory is an empty cache).
    fn entry_paths(&self) -> Result<Vec<PathBuf>, SnapshotError> {
        let mut paths = Vec::new();
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(paths),
            Err(e) => return Err(e.into()),
        };
        for entry in entries {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) == Some(EXTENSION) {
                paths.push(path);
            }
        }
        paths.sort();
        Ok(paths)
    }

    /// Inspects every entry: decode + checksum + fingerprint + name/key
    /// consistency. This is the one integrity pass `ls` and `verify` share
    /// with CI.
    ///
    /// Entries are returned sorted by **(algorithm, stream fingerprint,
    /// path)** — decoded content, not directory order — so `usnae cache
    /// ls` output is stable across filesystems and CI log diffs are
    /// byte-comparable. Broken entries sort last, by path.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] when the directory itself is unreadable;
    /// per-entry problems are reported in the entries, not as an `Err`.
    pub fn ls(&self) -> Result<Vec<CacheEntry>, SnapshotError> {
        let mut out = Vec::new();
        for path in self.entry_paths()? {
            let bytes = match std::fs::read(&path) {
                Ok(b) => b,
                Err(e) => {
                    out.push(CacheEntry {
                        path,
                        bytes: 0,
                        detail: Err(e.into()),
                    });
                    continue;
                }
            };
            let len = bytes.len() as u64;
            let detail = Snapshot::decode(&bytes).and_then(|snap| {
                let named = snap.key.file_name();
                let actual = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if named != actual {
                    return Err(SnapshotError::KeyMismatch {
                        entry: named,
                        requested: actual.to_string(),
                    });
                }
                Ok(CacheEntryDetail {
                    stream_fingerprint: snap.stream_fingerprint,
                    num_vertices: snap.num_vertices,
                    records: snap.records.len(),
                    key: snap.key,
                })
            });
            out.push(CacheEntry {
                path,
                bytes: len,
                detail,
            });
        }
        // Filesystem read order (and even the path sort above) is not the
        // contract: sort by decoded (algo, stream fingerprint) so two
        // caches holding the same entries always list identically.
        out.sort_by_cached_key(|e| match &e.detail {
            Ok(d) => (
                0u8,
                d.key.algorithm.clone(),
                d.stream_fingerprint,
                e.path.clone(),
            ),
            Err(_) => (1u8, String::new(), 0, e.path.clone()),
        });
        Ok(out)
    }

    /// [`ls`](Self::ls), keeping only the broken entries — what
    /// `usnae cache verify` prints and CI asserts empty.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] when the directory is unreadable.
    pub fn verify(&self) -> Result<Vec<CacheEntry>, SnapshotError> {
        Ok(self
            .ls()?
            .into_iter()
            .filter(|e| e.detail.is_err())
            .collect())
    }

    /// Deletes every snapshot file — plus any `*.usnae.tmp-*` leftovers
    /// from stores interrupted mid-write, which `ls`/`verify` deliberately
    /// never surface as entries. Returns how many *entries* were removed.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failures.
    pub fn clear(&self) -> Result<usize, SnapshotError> {
        let paths = self.entry_paths()?;
        let n = paths.len();
        for path in paths {
            std::fs::remove_file(path)?;
        }
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(n),
            Err(e) => return Err(e.into()),
        };
        for entry in entries {
            let path = entry?.path();
            let is_stale_tmp = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.contains(&format!(".{EXTENSION}.tmp-")));
            if is_stale_tmp {
                std::fs::remove_file(path)?;
            }
        }
        Ok(n)
    }
}

/// Read-through cached build: the one entry point every consumer
/// (builder, CLI, eval, bench) shares.
///
/// * Traced configs bypass the cache entirely (snapshots store no
///   [`Trace`](crate::api::Trace)); `stats.cache` stays [`CacheStatus::Uncached`].
/// * A warm hit is accepted only after full verification (checksum, key,
///   recomputed stream fingerprint); the returned output has
///   `stats.cache == Hit` and an empty phase list — no phase work ran.
/// * A cold or *rotten* entry falls back to a real build; with `write`
///   enabled the fresh snapshot replaces the entry and `stats.cache` is
///   [`CacheStatus::Miss`].
///
/// # Errors
///
/// [`BuildError`] from the underlying construction, or
/// [`BuildError::Cache`] when a fresh snapshot cannot be stored (a cache
/// the user asked for that silently drops writes would defeat the warm
/// runs they're setting up).
pub fn build_cached(
    construction: &dyn Construction,
    g: &Graph,
    cfg: &BuildConfig,
    cache_cfg: &CacheConfig,
) -> Result<BuildOutput, BuildError> {
    cfg.validate().map_err(BuildError::Param)?;
    if cfg.traced {
        return construction.build(g, cfg);
    }
    let t0 = Instant::now();
    let key = CacheKey::new(g, construction.name(), cfg);
    let cache = ConstructionCache::new(&cache_cfg.dir);
    if cache_cfg.read {
        // A decode/verify failure is deliberately not fatal: the entry is
        // stale bytes, the rebuild below overwrites it.
        if let Ok(Some(snap)) = cache.load(&key) {
            return Ok(snap.into_output(construction.name(), cfg.threads, t0.elapsed()));
        }
    }
    let mut out = construction.build(g, cfg)?;
    out.stats.cache = CacheStatus::Miss;
    if cache_cfg.write {
        cache
            .store(&Snapshot::from_output(key, &out))
            .map_err(BuildError::Cache)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Algorithm;
    use usnae_graph::generators;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("usnae-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_output() -> (Graph, BuildOutput, CacheKey) {
        let g = generators::gnp_connected(60, 0.1, 3).unwrap();
        let cfg = BuildConfig::default();
        let c = Algorithm::Centralized.construction();
        let out = c.build(&g, &cfg).unwrap();
        let key = CacheKey::new(&g, c.name(), &cfg);
        (g, out, key)
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        let (_, out, key) = sample_output();
        let snap = Snapshot::from_output(key, &out);
        let decoded = Snapshot::decode(&snap.encode()).unwrap();
        assert_eq!(snap, decoded);
        assert_eq!(
            decoded.rebuild_emulator().provenance(),
            out.emulator.provenance()
        );
    }

    #[test]
    fn partitioned_build_stats_survive_the_codec() {
        let g = generators::gnp_connected(60, 0.1, 3).unwrap();
        let cfg = BuildConfig {
            shards: 4,
            partition: usnae_graph::partition::PartitionPolicy::DegreeBalanced,
            ..BuildConfig::default()
        };
        let c = Algorithm::Centralized.construction();
        let out = c.build(&g, &cfg).unwrap();
        assert_eq!(
            out.stats.shards.len(),
            4,
            "partitioned build records shards"
        );
        let key = CacheKey::new(&g, c.name(), &cfg);
        let snap = Snapshot::from_output(key, &out);
        let decoded = Snapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded.stats.shards, out.stats.shards);
        assert_eq!(decoded, snap);
    }

    fn worker_output() -> (Graph, BuildOutput, CacheKey) {
        let g = generators::gnp_connected(60, 0.1, 3).unwrap();
        let cfg = BuildConfig {
            shards: 3,
            threads: 2,
            transport: TransportKind::Channel,
            ..BuildConfig::default()
        };
        let c = Algorithm::Centralized.construction();
        let out = c.build(&g, &cfg).unwrap();
        let key = CacheKey::new(&g, c.name(), &cfg);
        (g, out, key)
    }

    #[test]
    fn worker_build_stats_survive_the_codec() {
        let (_, out, key) = worker_output();
        assert_eq!(out.stats.transport, TransportKind::Channel);
        let measured = out.stats.messages.clone().expect("worker build measures");
        assert!(measured.rounds > 0 && measured.messages > 0);
        let snap = Snapshot::from_output(key, &out);
        let decoded = Snapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded.stats.transport, TransportKind::Channel);
        assert_eq!(decoded.stats.messages, Some(measured));
        assert_eq!(decoded, snap);
    }

    #[test]
    fn v2_snapshots_remain_readable_without_worker_stats() {
        // A genuine version-2 file (pre-transport codec): everything
        // round-trips except the v3 tail, which decodes to its v2
        // defaults — transport `inproc`, no message stats.
        let (_, out, key) = worker_output();
        let snap = Snapshot::from_output(key, &out);
        let v2 = snap.encode_version(2);
        assert_eq!(v2[8], 2, "version byte is little-endian 2");
        let decoded = Snapshot::decode(&v2).unwrap();
        assert_eq!(decoded.stats.transport, TransportKind::Inproc);
        assert_eq!(decoded.stats.messages, None);
        assert_eq!(decoded.records, snap.records);
        assert_eq!(decoded.stream_fingerprint, snap.stream_fingerprint);
        assert_eq!(decoded.stats.shards, snap.stats.shards);
        assert_eq!(
            decoded.rebuild_emulator().provenance(),
            out.emulator.provenance()
        );
    }

    #[test]
    fn encoding_below_min_version_is_refused() {
        let (_, out, key) = sample_output();
        let snap = Snapshot::from_output(key, &out);
        let err = std::panic::catch_unwind(|| snap.encode_version(MIN_VERSION - 1));
        assert!(err.is_err(), "v1 is not encodable");
    }

    #[test]
    fn decode_rejects_garbage_with_typed_errors() {
        let (_, out, key) = sample_output();
        let good = Snapshot::from_output(key, &out).encode();

        assert!(matches!(
            Snapshot::decode(b"not a snapshot at all....."),
            Err(SnapshotError::BadMagic)
        ));
        assert!(matches!(
            Snapshot::decode(&good[..5]),
            Err(SnapshotError::Truncated { .. })
        ));
        // Version bump.
        let mut versioned = good.clone();
        versioned[8] = 0xFF;
        assert!(matches!(
            Snapshot::decode(&versioned),
            Err(SnapshotError::UnsupportedVersion { found, supported })
                if found != VERSION && supported == VERSION
        ));
        // Flip one payload byte: checksum catches it.
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(matches!(
            Snapshot::decode(&flipped),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        // Truncate mid-records.
        assert!(matches!(
            Snapshot::decode(&good[..good.len() / 2]),
            Err(SnapshotError::Truncated { .. }) | Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn store_load_hits_and_misses() {
        let dir = temp_dir("store-load");
        let cache = ConstructionCache::new(&dir);
        let (_, out, key) = sample_output();
        assert!(cache.load(&key).unwrap().is_none(), "cold cache misses");
        cache
            .store(&Snapshot::from_output(key.clone(), &out))
            .unwrap();
        let snap = cache.load(&key).unwrap().expect("warm cache hits");
        assert_eq!(snap.stream_fingerprint, out.stream_fingerprint());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_flags_corrupt_entries_and_clear_removes() {
        let dir = temp_dir("verify");
        let cache = ConstructionCache::new(&dir);
        let (_, out, key) = sample_output();
        let path = cache
            .store(&Snapshot::from_output(key.clone(), &out))
            .unwrap();
        assert!(cache.verify().unwrap().is_empty(), "fresh entry verifies");
        assert_eq!(cache.ls().unwrap().len(), 1);
        // Corrupt the file in place.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let broken = cache.verify().unwrap();
        assert_eq!(broken.len(), 1);
        assert!(matches!(
            broken[0].detail,
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        assert_eq!(cache.clear().unwrap(), 1);
        assert!(cache.ls().unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_sweeps_interrupted_store_leftovers() {
        let dir = temp_dir("tmp-sweep");
        let cache = ConstructionCache::new(&dir);
        let (_, out, key) = sample_output();
        cache.store(&Snapshot::from_output(key, &out)).unwrap();
        // Simulate a store killed between write and rename.
        let stale = dir.join(format!("orphan.{EXTENSION}.tmp-99999"));
        std::fs::write(&stale, b"half-written").unwrap();
        // ls/verify never surface the tmp file as an entry...
        assert_eq!(cache.ls().unwrap().len(), 1);
        assert!(cache.verify().unwrap().is_empty());
        // ...but clear removes it along with the entries.
        assert_eq!(cache.clear().unwrap(), 1);
        assert!(!stale.exists(), "stale tmp file must be swept");
        assert!(cache.ls().unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ls_orders_entries_by_algo_then_fingerprint() {
        let dir = temp_dir("ls-order");
        let cache = ConstructionCache::new(&dir);
        // Multiple algorithms x multiple graphs, stored in scrambled order.
        for seed in [9u64, 2, 5] {
            let g = generators::gnp_connected(40, 0.15, seed).unwrap();
            let cfg = BuildConfig::default();
            for algo in [Algorithm::Spanner, Algorithm::Centralized] {
                let c = algo.construction();
                let out = c.build(&g, &cfg).unwrap();
                cache
                    .store(&Snapshot::from_output(
                        CacheKey::new(&g, c.name(), &cfg),
                        &out,
                    ))
                    .unwrap();
            }
        }
        let entries = cache.ls().unwrap();
        assert_eq!(entries.len(), 6);
        let keys: Vec<(String, u64)> = entries
            .iter()
            .map(|e| {
                let d = e.detail.as_ref().unwrap();
                (d.key.algorithm.clone(), d.stream_fingerprint)
            })
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "ls must sort by (algo, fingerprint)");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn build_cached_cold_then_warm() {
        let dir = temp_dir("cold-warm");
        let cache_cfg = CacheConfig::new(&dir);
        let g = generators::gnp_connected(60, 0.1, 7).unwrap();
        let cfg = BuildConfig::default();
        let c = Algorithm::FastCentralized.construction();

        let cold = build_cached(c.as_ref(), &g, &cfg, &cache_cfg).unwrap();
        assert_eq!(cold.stats.cache, CacheStatus::Miss);
        assert!(!cold.stats.phases.is_empty(), "cold build ran its phases");

        let warm = build_cached(c.as_ref(), &g, &cfg, &cache_cfg).unwrap();
        assert_eq!(warm.stats.cache, CacheStatus::Hit);
        assert!(warm.stats.phases.is_empty(), "warm hit skipped phase work");
        assert_eq!(warm.stream_fingerprint(), cold.stream_fingerprint());
        assert_eq!(
            warm.emulator.provenance(),
            cold.emulator.provenance(),
            "hit is byte-identical to the cold build"
        );
        assert_eq!(warm.certified, cold.certified);
        assert_eq!(warm.size_bound, cold.size_bound);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn traced_configs_bypass_the_cache() {
        let dir = temp_dir("traced");
        let cache_cfg = CacheConfig::new(&dir);
        let g = generators::grid2d(6, 6).unwrap();
        let cfg = BuildConfig {
            traced: true,
            ..BuildConfig::default()
        };
        let c = Algorithm::Centralized.construction();
        let out = build_cached(c.as_ref(), &g, &cfg, &cache_cfg).unwrap();
        assert_eq!(out.stats.cache, CacheStatus::Uncached);
        assert!(out.trace.is_some(), "trace request honored");
        assert!(
            ConstructionCache::new(&dir).ls().unwrap().is_empty(),
            "nothing stored for traced builds"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotten_entry_falls_back_to_rebuild_and_heals() {
        let dir = temp_dir("rotten");
        let cache_cfg = CacheConfig::new(&dir);
        let g = generators::gnp_connected(50, 0.12, 9).unwrap();
        let cfg = BuildConfig::default();
        let c = Algorithm::Centralized.construction();
        let cold = build_cached(c.as_ref(), &g, &cfg, &cache_cfg).unwrap();
        // Rot the entry.
        let key = CacheKey::new(&g, c.name(), &cfg);
        let path = ConstructionCache::new(&dir).entry_path(&key);
        std::fs::write(&path, b"rotten").unwrap();
        let rebuilt = build_cached(c.as_ref(), &g, &cfg, &cache_cfg).unwrap();
        assert_eq!(rebuilt.stats.cache, CacheStatus::Miss, "rot is a miss");
        assert_eq!(rebuilt.stream_fingerprint(), cold.stream_fingerprint());
        // And the store healed the entry.
        let warm = build_cached(c.as_ref(), &g, &cfg, &cache_cfg).unwrap();
        assert_eq!(warm.stats.cache, CacheStatus::Hit);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_only_and_write_only_modes() {
        let dir = temp_dir("modes");
        let g = generators::gnp_connected(50, 0.12, 2).unwrap();
        let cfg = BuildConfig::default();
        let c = Algorithm::Centralized.construction();
        let read_only = CacheConfig {
            write: false,
            ..CacheConfig::new(&dir)
        };
        let out = build_cached(c.as_ref(), &g, &cfg, &read_only).unwrap();
        assert_eq!(out.stats.cache, CacheStatus::Miss);
        assert!(
            ConstructionCache::new(&dir).ls().unwrap().is_empty(),
            "read-only stores nothing"
        );
        let write_only = CacheConfig {
            read: false,
            ..CacheConfig::new(&dir)
        };
        build_cached(c.as_ref(), &g, &cfg, &write_only).unwrap();
        let again = build_cached(c.as_ref(), &g, &cfg, &write_only).unwrap();
        assert_eq!(
            again.stats.cache,
            CacheStatus::Miss,
            "write-only never reads"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
