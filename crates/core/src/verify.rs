//! Size and stretch certification of built emulators/spanners.
//!
//! Works on any weighted graph `H` over the vertices of `G`, so the same
//! auditors serve the centralized emulator, the distributed emulator, the
//! fast centralized simulation, the §4 spanner, and all baselines.

use std::collections::HashMap;
use usnae_graph::bfs::bfs;
use usnae_graph::dijkstra::dijkstra;
use usnae_graph::{Graph, VertexId, WeightedGraph};

/// Outcome of a stretch audit over a set of pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct StretchReport {
    /// Pairs with finite `d_G` that were audited.
    pub pairs_checked: usize,
    /// Pairs violating `d_H ≤ α·d_G + β`.
    pub violations: usize,
    /// Pairs where `d_H < d_G` (must be 0: emulators never shorten).
    pub shortening_violations: usize,
    /// Pairs disconnected in `H` though connected in `G` (must be 0).
    pub unreachable_pairs: usize,
    /// Max observed `d_H / d_G` over audited pairs (1.0 if none).
    pub max_ratio: f64,
    /// Mean observed `d_H / d_G`.
    pub mean_ratio: f64,
    /// Max observed additive excess `max(0, d_H − d_G)`.
    pub max_additive_error: u64,
    /// Max observed `d_H − (1+ε)·d_G` clamped at 0 — the "β actually
    /// needed" if the multiplicative part is fixed at `α`.
    pub needed_beta: f64,
    /// The `α` audited against.
    pub alpha: f64,
    /// The `β` audited against.
    pub beta: f64,
}

impl StretchReport {
    /// Whether the `(α, β)` guarantee held on every audited pair.
    pub fn passed(&self) -> bool {
        self.violations == 0 && self.shortening_violations == 0 && self.unreachable_pairs == 0
    }
}

/// Audits `d_G(u,v) ≤ d_H(u,v) ≤ α·d_G(u,v) + β` over `pairs`.
///
/// Distances in `H` are measured in `H` alone (an emulator must certify its
/// stretch by itself). Pairs disconnected in `G` are skipped; pairs
/// connected in `G` but not in `H` are counted as `unreachable_pairs`.
///
/// # Example
///
/// ```
/// use usnae_core::verify::audit_stretch;
/// use usnae_graph::{generators, WeightedGraph};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::path(6)?;
/// let h = WeightedGraph::from_unit_graph(&g); // H = G is a (1, 0)-emulator
/// let pairs = usnae_graph::distance::sample_pairs(&g, 100, 1);
/// let report = audit_stretch(&g, &h, 1.0, 0.0, &pairs);
/// assert!(report.passed());
/// assert_eq!(report.max_ratio, 1.0);
/// # Ok(())
/// # }
/// ```
pub fn audit_stretch(
    g: &Graph,
    h: &WeightedGraph,
    alpha: f64,
    beta: f64,
    pairs: &[(VertexId, VertexId)],
) -> StretchReport {
    let mut report = StretchReport {
        pairs_checked: 0,
        violations: 0,
        shortening_violations: 0,
        unreachable_pairs: 0,
        max_ratio: 1.0,
        mean_ratio: 0.0,
        max_additive_error: 0,
        needed_beta: 0.0,
        alpha,
        beta,
    };
    let mut ratio_sum = 0.0;
    // Group pairs by source: one BFS in G + one Dijkstra in H per source.
    let mut by_source: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
    for &(u, v) in pairs {
        by_source.entry(u).or_default().push(v);
    }
    for (source, targets) in by_source {
        let dg = bfs(g, source);
        let dh = dijkstra(h, source);
        for v in targets {
            let Some(dg) = dg[v] else { continue }; // disconnected in G: out of scope
            report.pairs_checked += 1;
            let Some(dh) = dh[v] else {
                report.unreachable_pairs += 1;
                continue;
            };
            if dh < dg {
                report.shortening_violations += 1;
            }
            if (dh as f64) > alpha * dg as f64 + beta + 1e-9 {
                report.violations += 1;
            }
            if dg > 0 {
                let ratio = dh as f64 / dg as f64;
                report.max_ratio = report.max_ratio.max(ratio);
                ratio_sum += ratio;
            } else {
                ratio_sum += 1.0;
            }
            report.max_additive_error = report.max_additive_error.max(dh.saturating_sub(dg));
            report.needed_beta = report.needed_beta.max(dh as f64 - alpha * dg as f64);
        }
    }
    report.needed_beta = report.needed_beta.max(0.0);
    if report.pairs_checked > 0 {
        report.mean_ratio = ratio_sum / report.pairs_checked as f64;
    }
    report
}

/// Checks the size bound `|H| ≤ bound`, returning the slack `bound − |H|`
/// (negative on violation).
pub fn size_slack(num_edges: usize, bound: f64) -> f64 {
    bound - num_edges as f64
}

/// Verifies that a *spanner* is a subgraph of `G` with unit weights.
pub fn is_subgraph_spanner(g: &Graph, h: &WeightedGraph) -> bool {
    h.edges().all(|e| e.weight == 1 && g.has_edge(e.u, e.v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use usnae_graph::generators;

    #[test]
    fn identity_emulator_passes() {
        let g = generators::gnp_connected(60, 0.1, 2).unwrap();
        let h = WeightedGraph::from_unit_graph(&g);
        let pairs = usnae_graph::distance::sample_pairs(&g, 200, 3);
        let report = audit_stretch(&g, &h, 1.0, 0.0, &pairs);
        assert!(report.passed());
        assert_eq!(report.max_additive_error, 0);
        assert!((report.mean_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn missing_edges_flagged_unreachable() {
        let g = generators::path(4).unwrap();
        let h = WeightedGraph::new(4); // empty H
        let report = audit_stretch(&g, &h, 1.0, 0.0, &[(0, 3)]);
        assert_eq!(report.unreachable_pairs, 1);
        assert!(!report.passed());
    }

    #[test]
    fn shortening_detected() {
        let g = generators::path(4).unwrap();
        let mut h = WeightedGraph::from_unit_graph(&g);
        h.add_edge(0, 3, 1); // illegal shortcut: d_G(0,3) = 3
        let report = audit_stretch(&g, &h, 2.0, 10.0, &[(0, 3)]);
        assert_eq!(report.shortening_violations, 1);
        assert!(!report.passed());
    }

    #[test]
    fn stretch_violation_detected_and_needed_beta_reported() {
        let g = generators::path(5).unwrap();
        let mut h = WeightedGraph::new(5);
        // Path in H that doubles every distance.
        for i in 0..4 {
            h.add_edge(i, i + 1, 2);
        }
        let report = audit_stretch(&g, &h, 1.0, 1.0, &[(0, 4)]);
        assert_eq!(report.violations, 1);
        assert!((report.needed_beta - 4.0).abs() < 1e-9); // d_H=8, α·d_G=4
        assert_eq!(report.max_additive_error, 4);
        let ok = audit_stretch(&g, &h, 2.0, 0.0, &[(0, 4)]);
        assert!(ok.passed());
    }

    #[test]
    fn pairs_disconnected_in_g_skipped() {
        let g = usnae_graph::Graph::from_edges(4, &[(0, 1)]).unwrap();
        let h = WeightedGraph::from_unit_graph(&g);
        let report = audit_stretch(&g, &h, 1.0, 0.0, &[(0, 3), (0, 1)]);
        assert_eq!(report.pairs_checked, 1);
        assert!(report.passed());
    }

    #[test]
    fn size_slack_signs() {
        assert!(size_slack(10, 12.5) > 0.0);
        assert!(size_slack(13, 12.5) < 0.0);
    }

    #[test]
    fn subgraph_check() {
        let g = generators::cycle(5).unwrap();
        let mut h = WeightedGraph::new(5);
        h.add_edge(0, 1, 1);
        assert!(is_subgraph_spanner(&g, &h));
        h.add_edge(0, 2, 1); // chord not in C_5
        assert!(!is_subgraph_spanner(&g, &h));
        let mut w = WeightedGraph::new(5);
        w.add_edge(0, 1, 2); // weighted edge disqualifies
        assert!(!is_subgraph_spanner(&g, &w));
    }
}
