//! Phase orchestration of the distributed construction (§3.1).
//!
//! Runs Tasks 1–3 and the interconnection step back to back on one
//! [`Simulator`], so the accumulated [`Metrics`] are the honest CONGEST
//! cost of the whole execution. The emulator is assembled strictly from
//! *per-node* knowledge (what each processor learned through messages), and
//! the driver cross-checks the paper's headline distributed property: for
//! every emulator edge `(u, v)`, **both** endpoints know the edge and agree
//! on its weight ([`DistributedBuild::knowledge_violations`] must be 0).
//!
//! Two explicit round charges supplement the simulated rounds
//! (substitution S2): one round per phase for parent notification after the
//! forest BFS, and `min(R_{i+1}, n)` rounds for the intra-cluster membership
//! broadcast the paper folds into the radius recursion.

use std::collections::BTreeMap;

use crate::cluster::{Cluster, Partition};
use crate::emulator::{EdgeKind, EdgeProvenance, Emulator};
use crate::exec::PhaseTiming;
use crate::params::DistributedParams;
use usnae_congest::{CongestError, Metrics, Simulator};
use usnae_graph::{Dist, Graph, VertexId};

use super::forest::BfsForest;
use super::popular::PopularDetect;
use super::ruling::compute_ruling_set;
use super::supercluster::Supercluster;

/// Round budget per protocol run — far above anything the constructions
/// need; hitting it indicates a protocol bug, not a slow graph.
const RUN_BUDGET: u64 = 1 << 40;

/// Per-phase record of the distributed execution.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedPhaseTrace {
    /// Phase index `i`.
    pub phase: usize,
    /// `|P_i|` at phase entry.
    pub num_clusters: usize,
    /// Distance threshold `δ_i` (pre-clamping).
    pub delta: Dist,
    /// The clamped exploration depth actually simulated (`min(δ_i, n)`).
    pub delta_effective: Dist,
    /// Popular clusters detected.
    pub num_popular: usize,
    /// Ruling set size.
    pub ruling_set_size: usize,
    /// Ball-carving iterations the ruling set needed.
    pub ruling_iterations: usize,
    /// Superclusters formed.
    pub num_superclusters: usize,
    /// Hub splits during backtracking.
    pub hub_splits: usize,
    /// Clusters left unclustered.
    pub num_unclustered: usize,
    /// Superclustering edge insertions.
    pub superclustering_edges: usize,
    /// Interconnection edge insertions.
    pub interconnection_edges: usize,
    /// Simulated rounds consumed by this phase (incl. explicit charges).
    pub rounds: u64,
}

/// Result of a distributed build.
#[derive(Debug)]
pub struct DistributedBuild {
    /// The emulator, assembled from per-node knowledge.
    pub emulator: Emulator,
    /// Per-phase execution records.
    pub phases: Vec<DistributedPhaseTrace>,
    /// Final CONGEST metrics (rounds, messages, words, congestion).
    pub metrics: Metrics,
    /// `partitions[i]` is `P_i`.
    pub partitions: Vec<Partition>,
    /// Edge-knowledge cross-checks performed.
    pub knowledge_checked: usize,
    /// Cross-checks that failed — the headline guarantee demands **0**.
    pub knowledge_violations: usize,
    /// Wall-clock per-phase timings (`explorations` counts the detection
    /// sources simulated that phase), for [`BuildStats`](crate::exec::BuildStats).
    pub timings: Vec<PhaseTiming>,
}

/// Runs the full distributed construction of §3 on `g`.
///
/// # Errors
///
/// Propagates [`CongestError`] from the simulator (contract violations or
/// an exhausted round budget — both indicate bugs, not bad inputs).
#[deprecated(
    since = "0.2.0",
    note = "use usnae_core::api::EmulatorBuilder with Algorithm::Distributed instead"
)]
pub fn build_emulator_distributed(
    g: &Graph,
    params: &DistributedParams,
) -> Result<DistributedBuild, CongestError> {
    build_distributed(g, params)
}

/// Crate-internal entry point behind [`crate::api::EmulatorBuilder`] (and the
/// deprecated free-function shim): runs the §3 CONGEST pipeline end to end.
pub(crate) fn build_distributed(
    g: &Graph,
    params: &DistributedParams,
) -> Result<DistributedBuild, CongestError> {
    let n = g.num_vertices();
    let mut sim = Simulator::new(g);
    let mut emulator = Emulator::new(n);
    let mut partition = Partition::singletons(n);
    let mut build = DistributedBuild {
        emulator: Emulator::new(0), // replaced at the end
        phases: Vec::with_capacity(params.ell() + 1),
        metrics: Metrics::new(),
        partitions: vec![partition.clone()],
        knowledge_checked: 0,
        knowledge_violations: 0,
        timings: Vec::with_capacity(params.ell() + 1),
    };

    for i in 0..=params.ell() {
        let last = i == params.ell();
        let phase_start = std::time::Instant::now();
        let rounds_before = sim.metrics().rounds;
        let delta = params.delta(i);
        let delta_eff = delta.min(n as Dist);
        let cap = params.degree_cap(i, n);
        let centers = partition.centers();
        let center_of = partition.center_index();

        let mut trace = DistributedPhaseTrace {
            phase: i,
            num_clusters: partition.len(),
            delta,
            delta_effective: delta_eff,
            num_popular: 0,
            ruling_set_size: 0,
            ruling_iterations: 0,
            num_superclusters: 0,
            hub_splits: 0,
            num_unclustered: 0,
            superclustering_edges: 0,
            interconnection_edges: 0,
            rounds: 0,
        };

        // Task 1: popular-cluster detection from all P_i centers.
        let mut detect = PopularDetect::new(n, &centers, cap, delta_eff);
        sim.run(&mut detect, RUN_BUDGET)?;
        let mut explorations = centers.len();

        // Supercluster assignment per center vertex, index-keyed so
        // membership tests never touch iteration order.
        let mut joined: Vec<Option<(VertexId, Dist)>> = vec![None; n];
        let mut next_clusters: Vec<Cluster> = Vec::new();

        if !last {
            let popular = detect.popular_centers();
            trace.num_popular = popular.len();
            if !popular.is_empty() {
                // Task 2: ruling set over the popular centers.
                let rs = compute_ruling_set(&mut sim, &popular, delta_eff, RUN_BUDGET)?;
                trace.ruling_set_size = rs.rulers.len();
                trace.ruling_iterations = rs.iterations;

                // Task 3: BFS ruling forest + backtracking superclustering.
                let horizon = params.forest_depth(i).min(n as Dist);
                let mut forest = BfsForest::new(n, &rs.rulers, horizon);
                sim.run(&mut forest, RUN_BUDGET)?;
                sim.charge_rounds(1); // children learn they are children (S2)
                let slots: Vec<_> = (0..n).map(|v| forest.slot(v)).collect();
                let mut is_center = vec![false; n];
                for &c in &centers {
                    is_center[c] = true;
                }
                let mut sc = Supercluster::new(slots, is_center, cap, horizon);
                sim.run(&mut sc, RUN_BUDGET)?;
                trace.hub_splits = sc.hubs().len();

                // Assemble superclusters from the joint knowledge, checking
                // the both-endpoints property on every edge. Grouping by
                // root in a BTreeMap fixes the supercluster emission order
                // (ascending root id) independently of any hashing.
                let mut members: BTreeMap<VertexId, Vec<usize>> = BTreeMap::new();
                for &c in &centers {
                    let Some((r, w)) = sc.joined(c) else { continue };
                    joined[c] = Some((r, w));
                    members.entry(r).or_default().push(center_of[&c]);
                    if c != r {
                        build.knowledge_checked += 1;
                        if !sc.edges_at(r).contains(&(c, w)) {
                            build.knowledge_violations += 1;
                        }
                        emulator.add_edge(
                            r,
                            c,
                            w,
                            EdgeProvenance {
                                phase: i,
                                kind: EdgeKind::Superclustering,
                                charged_to: c,
                            },
                        );
                        trace.superclustering_edges += 1;
                    }
                }
                debug_assert!(
                    popular.iter().all(|&c| joined[c].is_some()),
                    "every popular cluster is superclustered (Lemma 3.4)"
                );
                for (r, idxs) in &members {
                    let mut cluster_members = Vec::new();
                    for &idx in idxs {
                        cluster_members.extend_from_slice(&partition.cluster(idx).members);
                    }
                    next_clusters.push(Cluster {
                        center: *r,
                        members: cluster_members,
                    });
                }
                trace.num_superclusters = next_clusters.len();
                // Membership broadcast inside superclusters (S2): the paper
                // folds this depth into R_{i+1}.
                let radius = params.schedule().radius[i + 1].min(n as Dist);
                sim.charge_rounds(radius);
            }
        }

        // Interconnection step (§3.1.3). Knowledge tables are BTreeMaps, so
        // the edge stream below is emitted in (center, neighbor-id) order —
        // the driver's single defined order, identical on every run.
        let u_centers: Vec<VertexId> = centers
            .iter()
            .copied()
            .filter(|&c| joined[c].is_none())
            .collect();
        trace.num_unclustered = u_centers.len();
        if last {
            // Phase ℓ: every center is unpopular; the single detection run
            // gives symmetric exact knowledge (Theorem 3.1).
            for &u in &u_centers {
                for (&c, &d) in detect.known(u) {
                    if c == u {
                        continue;
                    }
                    build.knowledge_checked += 1;
                    if detect.known(c).get(&u) != Some(&d) {
                        build.knowledge_violations += 1;
                    }
                    emulator.add_edge(
                        u,
                        c,
                        d,
                        EdgeProvenance {
                            phase: i,
                            kind: EdgeKind::Interconnection,
                            charged_to: u,
                        },
                    );
                    trace.interconnection_edges += 1;
                }
            }
        } else if !u_centers.is_empty() {
            // Second detection run from U_i so the *other* endpoints learn
            // of the new edges too.
            let mut reverse = PopularDetect::new(n, &u_centers, cap, delta_eff);
            sim.run(&mut reverse, RUN_BUDGET)?;
            explorations += u_centers.len();
            for &u in &u_centers {
                for (&c, &d) in detect.known(u) {
                    if c == u {
                        continue;
                    }
                    build.knowledge_checked += 1;
                    if reverse.known(c).get(&u) != Some(&d) {
                        build.knowledge_violations += 1;
                    }
                    emulator.add_edge(
                        u,
                        c,
                        d,
                        EdgeProvenance {
                            phase: i,
                            kind: EdgeKind::Interconnection,
                            charged_to: u,
                        },
                    );
                    trace.interconnection_edges += 1;
                }
            }
        }

        trace.rounds = sim.metrics().rounds - rounds_before;
        build.phases.push(trace);
        build.timings.push(PhaseTiming {
            phase: i,
            duration: phase_start.elapsed(),
            explorations,
        });
        partition = Partition::from_clusters(next_clusters);
        build.partitions.push(partition.clone());
    }

    debug_assert!(partition.is_empty(), "P_(ell+1) must be empty (eq. 17)");
    build.metrics = sim.metrics().clone();
    build.emulator = emulator;
    Ok(build)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charging::ChargeLedger;
    use crate::verify::audit_stretch;
    use usnae_graph::distance::sample_pairs;
    use usnae_graph::generators;

    fn params(eps: f64, kappa: u32, rho: f64) -> DistributedParams {
        DistributedParams::new(eps, kappa, rho).unwrap()
    }

    #[test]
    fn size_and_knowledge_on_random_graphs() {
        for seed in 0..3u64 {
            let g = generators::gnp_connected(100, 0.06, seed).unwrap();
            let p = params(0.5, 4, 0.5);
            let build = build_distributed(&g, &p).unwrap();
            assert_eq!(build.knowledge_violations, 0, "seed {seed}");
            assert!(build.knowledge_checked > 0);
            assert!(
                build.emulator.num_edges() as f64 <= p.size_bound(100) + 1e-6,
                "seed {seed}: {} > {}",
                build.emulator.num_edges(),
                p.size_bound(100)
            );
        }
    }

    #[test]
    fn stretch_certified() {
        let g = generators::gnp_connected(90, 0.07, 11).unwrap();
        let p = params(0.5, 4, 0.5);
        let (alpha, beta) = p.certified_stretch();
        let build = build_distributed(&g, &p).unwrap();
        let pairs = sample_pairs(&g, 300, 7);
        let report = audit_stretch(&g, build.emulator.graph(), alpha, beta, &pairs);
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn stretch_certified_on_grid() {
        let g = generators::grid2d(9, 9).unwrap();
        let p = params(0.9, 3, 0.5);
        let (alpha, beta) = p.certified_stretch();
        let build = build_distributed(&g, &p).unwrap();
        let pairs = sample_pairs(&g, 200, 3);
        let report = audit_stretch(&g, build.emulator.graph(), alpha, beta, &pairs);
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn charging_discipline_holds() {
        let g = generators::gnp_connected(100, 0.08, 5).unwrap();
        let p = params(0.5, 4, 0.5);
        let build = build_distributed(&g, &p).unwrap();
        let ledger = ChargeLedger::from_emulator(&build.emulator);
        ledger.verify(|phase| p.degree_cap(phase, 100)).unwrap();
    }

    #[test]
    fn rounds_accounted_per_phase() {
        let g = generators::gnp_connected(80, 0.08, 9).unwrap();
        let p = params(0.5, 4, 0.5);
        let build = build_distributed(&g, &p).unwrap();
        let total: u64 = build.phases.iter().map(|t| t.rounds).sum();
        assert_eq!(total, build.metrics.rounds);
        assert!(build.metrics.rounds > 0);
        assert!(build.metrics.messages > 0);
    }

    #[test]
    fn star_collapses_distributedly() {
        let g = generators::star(40).unwrap();
        let p = params(0.5, 4, 0.5);
        let build = build_distributed(&g, &p).unwrap();
        assert_eq!(build.knowledge_violations, 0);
        // The hub is popular in phase 0, so a supercluster forms and P_1 has
        // a single cluster containing everything within the horizon.
        assert_eq!(build.phases[0].num_popular, 1);
        assert!(build.phases[0].num_superclusters >= 1);
    }

    #[test]
    fn path_stays_flat() {
        let g = generators::path(30).unwrap();
        let p = params(0.5, 4, 0.5);
        let build = build_distributed(&g, &p).unwrap();
        // Nobody is popular on a path at phase 0 with deg_0 = 30^0.25 ≈ 2.3;
        // the emulator is the path itself.
        assert_eq!(build.phases[0].num_popular, 0);
        assert_eq!(build.emulator.num_edges(), 29);
    }

    #[test]
    fn broom_exercises_hub_splitting_end_to_end() {
        let g = generators::broom(16, 2).unwrap();
        let p = params(0.5, 2, 0.5);
        let build = build_distributed(&g, &p).unwrap();
        assert_eq!(build.knowledge_violations, 0);
        let (alpha, beta) = p.certified_stretch();
        let pairs = sample_pairs(&g, 200, 5);
        let report = audit_stretch(&g, build.emulator.graph(), alpha, beta, &pairs);
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn partitions_cover_and_telescope() {
        let g = generators::gnp_connected(120, 0.07, 13).unwrap();
        let p = params(0.5, 4, 0.5);
        let build = build_distributed(&g, &p).unwrap();
        // eq. 15: |P_{i+1}| ≤ |P_i| / deg_i.
        for i in 0..build.partitions.len() - 1 {
            let cur = build.partitions[i].len() as f64;
            let next = build.partitions[i + 1].len() as f64;
            if next > 0.0 {
                assert!(
                    next <= cur / p.degree_threshold(i, 120) + 1e-9,
                    "phase {i}: {next} > {cur}/deg"
                );
            }
        }
    }
}
