//! Task 1 — detecting popular clusters (Algorithm 2, after EM19 Thm 2.1).
//!
//! A capped parallel Bellman-Ford from the cluster centers: `δ_i` strides of
//! `⌈deg_i⌉ + 1` rounds each. During a stride every vertex forwards to all
//! neighbors the (at most `⌈deg_i⌉ + 1`) center announcements it learned in
//! the previous stride; anything beyond the cap is dropped — that is the
//! whole trick: a vertex that *would* need to forward more has enough nearby
//! centers around it that they are all popular anyway, so exact knowledge is
//! only promised to (and needed by) centers that end up unpopular
//! (Theorem 3.1).
//!
//! Messages are `(center, dist)` pairs: 2 words. A stride's forwards are
//! enqueued at its first round and pipeline across the stride's rounds —
//! exactly one message per edge-direction per round, as the CONGEST engine
//! enforces.
//!
//! Determinism: the per-node `known`/`via` tables are `BTreeMap`s, so every
//! iteration over a node's knowledge — in particular the drivers' emission
//! of interconnection edges — visits centers in ascending id order,
//! identically on every run. (`HashMap` would randomize that order per
//! process and per map instance.)

use std::collections::BTreeMap;
use usnae_congest::{Ctx, NodeAlgorithm, Words};
use usnae_graph::Dist;

/// A center announcement: `(center id, distance to the receiving vertex)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Announce {
    /// The cluster center being announced.
    pub center: usize,
    /// Distance from the receiver to that center along the announcement's
    /// path (exact `d_G` when no cap dropped it, an overestimate never).
    pub dist: Dist,
}

impl Words for Announce {
    fn words(&self) -> usize {
        2
    }
}

/// The capped Bellman-Ford detector (Algorithm 2).
///
/// After [`run`](usnae_congest::Simulator::run) completes, per-node
/// knowledge is read through [`known`](Self::known) /
/// [`popular_centers`](Self::popular_centers).
#[derive(Debug)]
pub struct PopularDetect {
    /// Popularity / forwarding cap `⌈deg_i⌉`.
    cap: usize,
    /// Number of strides `δ_i` (clamped by the driver to the graph size —
    /// strides beyond the diameter are vacuous).
    strides: u64,
    /// Rounds per stride: `cap + 1`.
    stride_len: u64,
    source: Vec<bool>,
    /// Everything each vertex has learned: center → distance, ordered by
    /// center id so iteration is run-independent.
    known: Vec<BTreeMap<usize, Dist>>,
    /// The neighbor each center was first learned from (routing pointer,
    /// used by Theorem 3.1's "vertices on π know their distance" clause).
    via: Vec<BTreeMap<usize, usize>>,
    /// Learned during the current stride, in arrival order.
    fresh: Vec<Vec<usize>>,
    done: Vec<bool>,
}

impl PopularDetect {
    /// Sets up a detection run from `sources` with popularity cap `cap`
    /// (`= ⌈deg_i⌉`) and `strides = δ_i` (pre-clamped by the caller).
    pub fn new(n: usize, sources: &[usize], cap: usize, strides: Dist) -> Self {
        let mut source = vec![false; n];
        for &s in sources {
            source[s] = true;
        }
        let mut known: Vec<BTreeMap<usize, Dist>> = vec![BTreeMap::new(); n];
        for &s in sources {
            known[s].insert(s, 0);
        }
        PopularDetect {
            cap,
            strides,
            stride_len: cap as u64 + 1,
            source,
            known,
            via: vec![BTreeMap::new(); n],
            fresh: vec![Vec::new(); n],
            done: vec![false; n],
        }
    }

    /// The stride a round belongs to (1-based).
    fn stride_of(&self, round: u64) -> u64 {
        round.div_ceil(self.stride_len)
    }

    /// Whether `round` is the last round of its stride (forwarding happens
    /// here so the next stride's pipeline starts on its first round).
    fn is_boundary(&self, round: u64) -> bool {
        round.is_multiple_of(self.stride_len)
    }

    /// Everything `v` learned: `(center, dist)` pairs, including itself when
    /// it is a source. Iteration order is ascending center id — the defined
    /// order in which the drivers emit this knowledge as emulator edges.
    pub fn known(&self, v: usize) -> &BTreeMap<usize, Dist> {
        &self.known[v]
    }

    /// The neighbor from which `v` first learned `center` (absent for `v`'s
    /// own announcement).
    pub fn learned_via(&self, v: usize, center: usize) -> Option<usize> {
        self.via[v].get(&center).copied()
    }

    /// Number of *other* centers a source learned about.
    pub fn others_known(&self, v: usize) -> usize {
        let self_count = usize::from(self.source[v]);
        self.known[v].len() - self_count
    }

    /// Sources that learned of at least `cap` other centers — the popular
    /// set `W_i`.
    pub fn popular_centers(&self) -> Vec<usize> {
        (0..self.source.len())
            .filter(|&v| self.source[v] && self.others_known(v) >= self.cap)
            .collect()
    }

    fn forward(&mut self, node: usize, ctx: &mut Ctx<'_, Announce>) {
        // Cap: at most cap + 1 of the freshly learned centers move on.
        let take = self.fresh[node].len().min(self.cap + 1);
        for idx in 0..take {
            let center = self.fresh[node][idx];
            let dist = self.known[node][&center];
            ctx.broadcast(Announce {
                center,
                dist: dist + 1,
            });
        }
        self.fresh[node].clear();
    }
}

impl NodeAlgorithm for PopularDetect {
    type Msg = Announce;

    fn init(&mut self, node: usize, ctx: &mut Ctx<'_, Announce>) {
        if self.strides == 0 {
            self.done[node] = true;
            return;
        }
        if self.source[node] {
            // Stride 1's pipeline: announce yourself.
            ctx.broadcast(Announce {
                center: node,
                dist: 1,
            });
        }
    }

    fn round(&mut self, node: usize, inbox: &[(usize, Announce)], ctx: &mut Ctx<'_, Announce>) {
        if self.done[node] {
            return;
        }
        let round = ctx.round();
        for &(from, msg) in inbox {
            if let std::collections::btree_map::Entry::Vacant(e) =
                self.known[node].entry(msg.center)
            {
                e.insert(msg.dist);
                self.via[node].insert(msg.center, from);
                self.fresh[node].push(msg.center);
            }
        }
        if self.is_boundary(round) {
            let stride = self.stride_of(round);
            if stride < self.strides {
                self.forward(node, ctx);
            }
            if stride >= self.strides {
                self.done[node] = true;
            }
        }
    }

    fn is_idle(&self, node: usize) -> bool {
        self.done[node] || self.fresh[node].is_empty()
    }

    fn next_wakeup(&self, node: usize, now: u64) -> Option<u64> {
        if self.done[node] {
            return None;
        }
        // A node holding fresh announcements acts at its next stride
        // boundary; the engine may fast-forward quiet stretches to it.
        Some((now / self.stride_len + 1) * self.stride_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usnae_congest::Simulator;
    use usnae_graph::bfs::bfs;
    use usnae_graph::generators;

    fn run_detect(
        g: &usnae_graph::Graph,
        sources: &[usize],
        cap: usize,
        strides: Dist,
    ) -> (PopularDetect, u64) {
        let mut sim = Simulator::new(g);
        let mut algo = PopularDetect::new(g.num_vertices(), sources, cap, strides);
        let rounds = sim.run(&mut algo, 10_000_000).expect("run completes");
        (algo, rounds)
    }

    #[test]
    fn uncapped_detection_learns_exact_distances() {
        // Large cap: nothing is dropped, so every vertex knows every center
        // within δ strides at its exact BFS distance.
        let g = generators::grid2d(6, 6).unwrap();
        let sources: Vec<usize> = (0..36).step_by(5).collect();
        let delta = 4;
        let (algo, _) = run_detect(&g, &sources, 100, delta);
        for v in 0..36 {
            for &s in &sources {
                let exact = bfs(&g, s)[v].unwrap();
                let known = algo.known(v).get(&s).copied();
                if exact <= delta {
                    assert_eq!(known, Some(exact), "vertex {v} center {s}");
                } else {
                    assert_eq!(known, None, "vertex {v} center {s} beyond depth");
                }
            }
        }
    }

    #[test]
    fn popularity_threshold_applied() {
        // Star: the hub sees all leaves within 1 stride; leaves see only the
        // hub.
        let g = generators::star(10).unwrap();
        let sources: Vec<usize> = (0..10).collect();
        let (algo, _) = run_detect(&g, &sources, 3, 1);
        let popular = algo.popular_centers();
        assert_eq!(popular, vec![0]);
        assert_eq!(algo.others_known(0), 9);
        assert_eq!(algo.others_known(5), 1);
    }

    #[test]
    fn unpopular_centers_have_exact_knowledge() {
        // Theorem 3.1(2): centers that do not become popular know every
        // center within δ at the exact distance — even with capping active.
        for seed in 0..4u64 {
            let g = generators::gnp_connected(60, 0.07, seed).unwrap();
            let sources: Vec<usize> = (0..60).collect();
            let cap = 5;
            let delta = 3;
            let (algo, _) = run_detect(&g, &sources, cap, delta);
            let popular: std::collections::HashSet<usize> =
                algo.popular_centers().into_iter().collect();
            for &c in &sources {
                if popular.contains(&c) {
                    continue;
                }
                let exact = bfs(&g, c);
                for &other in &sources {
                    if other == c {
                        continue;
                    }
                    if let Some(d) = exact[other] {
                        if d <= delta {
                            assert_eq!(
                                algo.known(c).get(&other).copied(),
                                Some(d),
                                "seed {seed}: unpopular {c} missing center {other}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn round_cost_matches_stride_budget() {
        let g = generators::path(20).unwrap();
        let cap = 2;
        let delta = 5;
        let (_, rounds) = run_detect(&g, &[0, 19], cap, delta);
        // δ strides of (cap+1) rounds, minus whatever quiesces early.
        assert!(rounds <= delta * (cap as u64 + 1) + 1, "rounds = {rounds}");
        assert!(rounds >= delta, "rounds = {rounds}");
    }

    #[test]
    fn via_pointers_trace_back_to_center() {
        let g = generators::path(6).unwrap();
        let (algo, _) = run_detect(&g, &[0], 4, 5);
        // Walk the routing pointers from vertex 5 back to center 0.
        let mut cur = 5;
        let mut hops = 0;
        while cur != 0 {
            cur = algo.learned_via(cur, 0).expect("path recorded");
            hops += 1;
            assert!(hops <= 5);
        }
        assert_eq!(hops, 5);
    }

    #[test]
    fn zero_strides_is_a_noop() {
        let g = generators::path(4).unwrap();
        let (algo, rounds) = run_detect(&g, &[0], 2, 0);
        assert_eq!(rounds, 0);
        assert_eq!(algo.others_known(0), 0);
    }

    #[test]
    fn capping_limits_knowledge_spread() {
        // Dense clique with tiny cap: popular centers may have incomplete
        // knowledge, but every center still counts ≥ cap others (they are
        // all within one hop).
        let g = generators::complete_graph(12).unwrap();
        let sources: Vec<usize> = (0..12).collect();
        let (algo, _) = run_detect(&g, &sources, 3, 1);
        assert_eq!(algo.popular_centers().len(), 12);
    }
}
