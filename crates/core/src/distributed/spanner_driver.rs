//! Distributed construction of the §4 near-additive **spanner** in the
//! CONGEST simulator (Corollary 4.4).
//!
//! Reuses the emulator pipeline's protocols — capped Bellman-Ford
//! detection, min-id ball-carving ruling sets, BFS ruling forests — but, as
//! §4 observes, superclustering becomes *simpler* than for emulators:
//! spanner edges are graph edges added **locally** (a tree vertex adds the
//! edge to its parent; a path vertex adds its two path edges), so no
//! hub-vertex splitting is needed and one supercluster forms per tree.
//!
//! Two steps remain message-driven and are charged explicitly on top of the
//! simulated runs: the parent notification after the forest BFS (1 round)
//! and the path-marking pass in which centers confirm interconnection paths
//! hop by hop (pipelined, ≤ `δ_i + ⌈deg_i⌉` rounds; the path edges are read
//! out of the per-node `via` routing state the detection run left behind —
//! exactly the knowledge Theorem 3.1(2) promises to path vertices).

use std::collections::BTreeMap;

use crate::cluster::{Cluster, Partition};
use crate::emulator::{EdgeKind, EdgeProvenance, Emulator};
use crate::exec::PhaseTiming;
use crate::params::SpannerParams;
use usnae_congest::{CongestError, Metrics, Simulator};
use usnae_graph::{Dist, Graph, VertexId};

use super::forest::BfsForest;
use super::popular::PopularDetect;
use super::ruling::compute_ruling_set;

const RUN_BUDGET: u64 = 1 << 40;

/// Per-phase record of the distributed spanner execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannerDriverPhase {
    /// Phase index `i`.
    pub phase: usize,
    /// `|P_i|` at phase entry.
    pub num_clusters: usize,
    /// Popular clusters detected.
    pub num_popular: usize,
    /// Ruling set size (= superclusters formed).
    pub num_superclusters: usize,
    /// Clusters left unclustered.
    pub num_unclustered: usize,
    /// Spanner edge insertions from forest tree paths.
    pub superclustering_edges: usize,
    /// Spanner edge insertions from interconnection paths.
    pub interconnection_edges: usize,
    /// Rounds consumed by this phase (incl. explicit charges).
    pub rounds: u64,
}

/// Result of a distributed spanner build.
#[derive(Debug)]
pub struct DistributedSpannerBuild {
    /// The spanner (unit-weight subgraph of `G`).
    pub spanner: Emulator,
    /// Per-phase records.
    pub phases: Vec<SpannerDriverPhase>,
    /// Final CONGEST metrics.
    pub metrics: Metrics,
    /// Wall-clock per-phase timings (`explorations` counts the detection
    /// sources simulated that phase), for [`BuildStats`](crate::exec::BuildStats).
    pub timings: Vec<PhaseTiming>,
}

/// Runs the §4 spanner construction distributedly on `g`.
///
/// # Errors
///
/// Propagates [`CongestError`] from the simulator.
#[deprecated(
    since = "0.2.0",
    note = "use usnae_core::api::EmulatorBuilder with Algorithm::DistributedSpanner instead"
)]
pub fn build_spanner_distributed(
    g: &Graph,
    params: &SpannerParams,
) -> Result<DistributedSpannerBuild, CongestError> {
    build_spanner_congest(g, params)
}

/// Crate-internal entry point behind [`crate::api::EmulatorBuilder`] (and the
/// deprecated free-function shim): runs the §4 pipeline on the simulator.
pub(crate) fn build_spanner_congest(
    g: &Graph,
    params: &SpannerParams,
) -> Result<DistributedSpannerBuild, CongestError> {
    let n = g.num_vertices();
    let mut sim = Simulator::new(g);
    let mut spanner = Emulator::new(n);
    let mut partition = Partition::singletons(n);
    let mut phases = Vec::with_capacity(params.ell() + 1);
    let mut timings = Vec::with_capacity(params.ell() + 1);

    for i in 0..=params.ell() {
        let last = i == params.ell();
        let phase_start = std::time::Instant::now();
        let rounds_before = sim.metrics().rounds;
        let delta_eff = params.delta(i).min(n as Dist);
        let cap = params.degree_cap(i, n);
        let centers = partition.centers();
        let center_of = partition.center_index();

        let mut trace = SpannerDriverPhase {
            phase: i,
            num_clusters: partition.len(),
            num_popular: 0,
            num_superclusters: 0,
            num_unclustered: 0,
            superclustering_edges: 0,
            interconnection_edges: 0,
            rounds: 0,
        };

        // Task 1: detection (also the path knowledge for interconnection).
        let mut detect = PopularDetect::new(n, &centers, cap, delta_eff);
        sim.run(&mut detect, RUN_BUDGET)?;
        let explorations = centers.len();

        let mut superclustered = vec![false; n]; // indexed by center vertex
        let mut next_clusters: Vec<Cluster> = Vec::new();

        if !last {
            let popular = detect.popular_centers();
            trace.num_popular = popular.len();
            if !popular.is_empty() {
                let rs = compute_ruling_set(&mut sim, &popular, delta_eff, RUN_BUDGET)?;
                let horizon = params.forest_depth(i).min(n as Dist);
                let mut forest = BfsForest::new(n, &rs.rulers, horizon);
                sim.run(&mut forest, RUN_BUDGET)?;
                sim.charge_rounds(1); // parent notification

                // One supercluster per tree; members mark their tree paths.
                // The BTreeMap keeps the supercluster drain in ascending
                // root order without a separate sort.
                let mut members: BTreeMap<VertexId, Vec<usize>> =
                    rs.rulers.iter().map(|&r| (r, Vec::new())).collect();
                let mut marked = vec![false; n];
                for &rc in &centers {
                    let Some(slot) = forest.slot(rc) else {
                        continue;
                    };
                    superclustered[rc] = true;
                    members
                        .get_mut(&slot.root)
                        .expect("roots seeded")
                        .push(center_of[&rc]);
                    // Walk the tree path to the root, adding unmarked edges.
                    let mut cur = rc;
                    while let Some(s) = forest.slot(cur) {
                        if marked[cur] {
                            break; // the rest of the path is already in
                        }
                        marked[cur] = true;
                        let Some(p) = s.parent else { break };
                        if spanner.add_edge(
                            cur,
                            p,
                            1,
                            EdgeProvenance {
                                phase: i,
                                kind: EdgeKind::Superclustering,
                                charged_to: rc,
                            },
                        ) {
                            trace.superclustering_edges += 1;
                        }
                        cur = p;
                    }
                }
                // Path marking travels up the trees, pipelined.
                sim.charge_rounds(params.forest_depth(i).min(n as Dist) + cap as u64);

                for (r, idxs) in &members {
                    let mut cluster_members = Vec::new();
                    for &idx in idxs {
                        cluster_members.extend_from_slice(&partition.cluster(idx).members);
                    }
                    if cluster_members.is_empty() {
                        continue; // ruler whose cluster was claimed elsewhere
                    }
                    next_clusters.push(Cluster {
                        center: *r,
                        members: cluster_members,
                    });
                }
                trace.num_superclusters = next_clusters.len();
            }
        }

        // Interconnection: unclustered centers confirm shortest paths to all
        // neighboring centers along the detection run's via-pointers. The
        // knowledge tables are BTreeMaps, so targets are visited in
        // ascending id per center — the spanner's defined emission order.
        let u_centers: Vec<VertexId> = centers
            .iter()
            .copied()
            .filter(|&c| !superclustered[c])
            .collect();
        trace.num_unclustered = u_centers.len();
        for &rc in &u_centers {
            let known: Vec<(VertexId, Dist)> = detect
                .known(rc)
                .iter()
                .map(|(&c, &d)| (c, d))
                .filter(|&(c, _)| c != rc)
                .collect();
            for (target, dist) in known {
                // Walk via-pointers from rc toward the target; each hop is a
                // graph edge on a shortest path (Theorem 3.1(2)).
                let mut cur = rc;
                let mut remaining = dist;
                while cur != target {
                    let next = detect
                        .learned_via(cur, target)
                        .expect("path vertices know their routing pointer");
                    if spanner.add_edge(
                        cur,
                        next,
                        1,
                        EdgeProvenance {
                            phase: i,
                            kind: EdgeKind::Interconnection,
                            charged_to: rc,
                        },
                    ) {
                        trace.interconnection_edges += 1;
                    }
                    cur = next;
                    remaining = remaining.saturating_sub(1);
                    assert!(remaining > 0 || cur == target, "via-chain must terminate");
                }
            }
        }
        if !u_centers.is_empty() {
            // The confirmation pass pipelines over the paths.
            sim.charge_rounds(delta_eff + cap as u64);
        }

        trace.rounds = sim.metrics().rounds - rounds_before;
        phases.push(trace);
        timings.push(PhaseTiming {
            phase: i,
            duration: phase_start.elapsed(),
            explorations,
        });
        partition = Partition::from_clusters(next_clusters);
    }

    Ok(DistributedSpannerBuild {
        spanner,
        phases,
        metrics: sim.metrics().clone(),
        timings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{audit_stretch, is_subgraph_spanner};
    use usnae_graph::distance::sample_pairs;
    use usnae_graph::generators;

    #[test]
    fn subgraph_and_stretch_on_random_graphs() {
        for seed in 0..3u64 {
            let g = generators::gnp_connected(100, 0.07, seed).unwrap();
            let p = SpannerParams::new(0.5, 4, 0.5).unwrap();
            let build = build_spanner_congest(&g, &p).unwrap();
            assert!(
                is_subgraph_spanner(&g, build.spanner.graph()),
                "seed {seed}"
            );
            let (alpha, beta) = p.certified_stretch();
            let pairs = sample_pairs(&g, 150, 7);
            let rep = audit_stretch(&g, build.spanner.graph(), alpha, beta, &pairs);
            assert!(rep.passed(), "seed {seed}: {rep:?}");
        }
    }

    #[test]
    fn agrees_with_centralized_on_path() {
        let g = generators::path(30).unwrap();
        let p = SpannerParams::new(0.5, 2, 0.5).unwrap();
        let build = build_spanner_congest(&g, &p).unwrap();
        assert_eq!(build.spanner.num_edges(), 29);
        assert!(build.metrics.rounds > 0);
    }

    #[test]
    fn size_within_small_factor_of_bound() {
        let g = generators::gnp_connected(200, 0.1, 5).unwrap();
        let p = SpannerParams::new(0.5, 4, 0.5).unwrap();
        let build = build_spanner_congest(&g, &p).unwrap();
        assert!(
            (build.spanner.num_edges() as f64) <= 4.0 * p.size_bound(200),
            "{} vs {}",
            build.spanner.num_edges(),
            p.size_bound(200)
        );
        assert!(build.spanner.num_edges() <= g.num_edges());
    }

    #[test]
    fn rounds_accounted_per_phase() {
        let g = generators::grid2d(9, 9).unwrap();
        let p = SpannerParams::new(0.5, 4, 0.5).unwrap();
        let build = build_spanner_congest(&g, &p).unwrap();
        assert_eq!(
            build.phases.iter().map(|t| t.rounds).sum::<u64>(),
            build.metrics.rounds
        );
    }

    #[test]
    fn spanner_connects_what_g_connects() {
        let g = generators::caveman(12, 8).unwrap();
        let p = SpannerParams::new(0.5, 4, 0.5).unwrap();
        let build = build_spanner_congest(&g, &p).unwrap();
        let d = build.spanner.distances_from(0);
        assert!(d.iter().all(|x| x.is_some()));
    }
}
