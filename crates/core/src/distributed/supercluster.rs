//! Task 3b — forming superclusters by backtracking the BFS forest, with
//! **hub-vertex splitting** (§3.1.2, Fig. 7).
//!
//! Centers spanned by a ruling tree announce themselves up the tree in
//! depth-synchronized strides of `2·⌈deg_i⌉ + 2` rounds: a vertex at tree
//! depth `D` forwards its collected announcements at stride `T − D`
//! (`T = rul_i + δ_i`, clamped to `n`). A vertex that would have to forward
//! `≥ 2·deg_i + 2` announcements is a **hub**: it splits off new
//! superclusters instead of forwarding —
//!
//! * a hub that is itself a center becomes the center of one new
//!   supercluster absorbing everything it collected;
//! * a non-center hub partitions its children into groups of
//!   `[2deg_i+2, 6deg_i+6]` announcements and appoints the minimum-id
//!   center of each group as that group's supercluster center.
//!
//! Confirmations `(center, new-center, weight)` travel back *down* the
//! recorded announcement routes, which is exactly what makes **both
//! endpoints of every emulator edge know the edge** — the property no prior
//! deterministic CONGEST construction achieved.
//!
//! Determinism: routing tables and the hub grouping are `BTreeMap`s keyed
//! by center/child id, so message emission at hubs and the recorded
//! `edges_at` streams are identical run to run (announcement *arrival*
//! order is already deterministic — the engine delivers inboxes in
//! neighbor order with per-edge FIFO queues).

use std::collections::BTreeMap;
use usnae_congest::{Ctx, NodeAlgorithm, Words};
use usnae_graph::Dist;

use super::forest::TreeSlot;

/// Protocol message: announcements go up, confirmations come down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScMsg {
    /// A center announcing itself toward the root: `(center, d_G(root, center))`.
    Up {
        /// The announcing center.
        center: usize,
        /// Its distance from the tree root (= its tree depth).
        dist_root: Dist,
    },
    /// A supercluster assignment routed down: `center` joined the
    /// supercluster of `new_center` via an edge of weight `weight`;
    /// `toward` is the routing target (either `center` or `new_center`).
    Confirm {
        /// The center being assigned.
        center: usize,
        /// Its new supercluster center.
        new_center: usize,
        /// Emulator edge weight `(new_center, center)`.
        weight: Dist,
        /// Which endpoint this copy is being routed to.
        toward: usize,
    },
}

impl Words for ScMsg {
    fn words(&self) -> usize {
        match self {
            ScMsg::Up { .. } => 2,
            ScMsg::Confirm { .. } => 4,
        }
    }
}

/// The backtracking/superclustering protocol for one phase.
#[derive(Debug)]
pub struct Supercluster {
    /// Stride length `b = 2·⌈deg_i⌉ + 2` — also the hub threshold.
    b: usize,
    /// Total strides `T` (the forest depth horizon).
    t: Dist,
    slot: Vec<Option<TreeSlot>>,
    is_center: Vec<bool>,
    /// Announcements collected so far: `(center, dist_root)`.
    collected: Vec<Vec<(usize, Dist)>>,
    /// Routing: center → child the announcement arrived from (`None` for
    /// the vertex's own announcement). Ordered by center id.
    routing: Vec<BTreeMap<usize, Option<usize>>>,
    done_up: Vec<bool>,
    /// Output: per center, the supercluster it joined `(new_center, weight)`.
    joined: Vec<Option<(usize, Dist)>>,
    /// Output: per supercluster center, the edges it knows `(other, weight)`.
    edges_at: Vec<Vec<(usize, Dist)>>,
    /// Output: vertices that became supercluster centers.
    formed_center: Vec<bool>,
    /// Diagnostics: hub events and their group sizes (for Fig. 7 tests).
    hub_splits: Vec<usize>,
    group_sizes: Vec<usize>,
}

impl Supercluster {
    /// Prepares the protocol from the forest state: `slot[v]` from
    /// [`BfsForest`](super::forest::BfsForest), the `P_i` center bitmap,
    /// the popularity cap `⌈deg_i⌉`, and the stride horizon `t` (same
    /// clamped depth the forest was grown to). Child links are implicit: a
    /// vertex learns its children from the announcements they send.
    pub fn new(slot: Vec<Option<TreeSlot>>, is_center: Vec<bool>, cap: usize, t: Dist) -> Self {
        let n = slot.len();
        Supercluster {
            b: 2 * cap + 2,
            t,
            slot,
            is_center,
            collected: vec![Vec::new(); n],
            routing: vec![BTreeMap::new(); n],
            done_up: vec![false; n],
            joined: vec![None; n],
            edges_at: vec![Vec::new(); n],
            formed_center: vec![false; n],
            hub_splits: Vec::new(),
            group_sizes: Vec::new(),
        }
    }

    /// The round at which `node` forwards/consumes, or `None` if it is not
    /// in any tree. Stride `s` acts at round `s·b`; stride 0 acts at init.
    fn send_round(&self, node: usize) -> Option<u64> {
        let slot = self.slot[node]?;
        let stride = self.t - slot.depth;
        Some(stride * self.b as u64)
    }

    /// Supercluster assignment of center `c` after the run.
    pub fn joined(&self, c: usize) -> Option<(usize, Dist)> {
        self.joined[c]
    }

    /// Edges known at supercluster center `r`.
    pub fn edges_at(&self, r: usize) -> &[(usize, Dist)] {
        &self.edges_at[r]
    }

    /// Whether `v` ended up the center of a new supercluster.
    pub fn formed_center(&self, v: usize) -> bool {
        self.formed_center[v]
    }

    /// Group sizes produced by non-center hub splits (each must lie in
    /// `[b, 3b]` — the paper's `[2deg+2, 6deg+6]`).
    pub fn group_sizes(&self) -> &[usize] {
        &self.group_sizes
    }

    /// Vertices that acted as hubs.
    pub fn hubs(&self) -> &[usize] {
        &self.hub_splits
    }

    /// The hub threshold `b = 2·⌈deg_i⌉ + 2`.
    pub fn hub_threshold(&self) -> usize {
        self.b
    }

    fn record_assignment(&mut self, center: usize, new_center: usize, weight: Dist) {
        self.joined[center] = Some((new_center, weight));
        if center == new_center {
            self.formed_center[center] = true;
        }
    }

    /// Emits the routed copies of a confirmation from consumer `node`: one
    /// toward `center`, one toward `new_center` (just one when they
    /// coincide). An endpoint that is `node` itself records locally instead.
    fn send_confirms(
        &mut self,
        node: usize,
        center: usize,
        new_center: usize,
        weight: Dist,
        ctx: &mut Ctx<'_, ScMsg>,
    ) {
        let targets: &[usize] = if center == new_center {
            &[center]
        } else {
            &[center, new_center]
        };
        for &toward in targets {
            if toward == node {
                // The consumer is itself this endpoint: record locally.
                if toward == center {
                    self.record_assignment(center, new_center, weight);
                } else {
                    self.edges_at[node].push((center, weight));
                    self.formed_center[node] = true;
                }
                continue;
            }
            let child = self.routing[node]
                .get(&toward)
                .copied()
                .flatten()
                .expect("consumer routes confirmations along recorded announcement paths");
            ctx.send(
                child,
                ScMsg::Confirm {
                    center,
                    new_center,
                    weight,
                    toward,
                },
            );
        }
    }

    /// Consume `M` at `node` and form superclusters (hub or root logic).
    fn consume(&mut self, node: usize, ctx: &mut Ctx<'_, ScMsg>) {
        let m = std::mem::take(&mut self.collected[node]);
        if self.is_center[node] {
            // Hub-center (or root): one supercluster centered here.
            let depth = self.slot[node].expect("consumers are in a tree").depth;
            self.record_assignment(node, node, 0);
            for (c, dist_root) in m {
                if c == node {
                    continue;
                }
                let weight = dist_root - depth;
                // send_confirms records the (node, c) edge locally via the
                // toward == new_center == node branch.
                self.send_confirms(node, c, node, weight, ctx);
            }
            return;
        }
        // Non-center hub: group announcements by child, then greedily pack
        // children into groups of ≥ b announcements (merging a small tail).
        // The BTreeMap drains in ascending child id — a defined order, so
        // the packed groups (and every confirmation they trigger) are
        // identical run to run.
        let depth = self.slot[node].expect("consumers are in a tree").depth;
        let mut by_child: BTreeMap<usize, Vec<(usize, Dist)>> = BTreeMap::new();
        for (c, d) in m {
            let child = self.routing[node][&c].expect("non-center collects only from children");
            by_child.entry(child).or_default().push((c, d));
        }
        let mut groups: Vec<Vec<(usize, Dist)>> = Vec::new();
        let mut current: Vec<(usize, Dist)> = Vec::new();
        for (_, mut anns) in by_child {
            current.append(&mut anns);
            if current.len() >= self.b {
                groups.push(std::mem::take(&mut current));
            }
        }
        if !current.is_empty() {
            match groups.last_mut() {
                Some(last) => last.append(&mut current),
                None => groups.push(std::mem::take(&mut current)),
            }
        }
        for group in groups {
            self.group_sizes.push(group.len());
            let r = group
                .iter()
                .map(|&(c, _)| c)
                .min()
                .expect("groups are nonempty");
            let (_, dist_r) = *group
                .iter()
                .find(|&&(c, _)| c == r)
                .expect("r is in the group");
            let w_vr = dist_r - depth;
            // Tell r it is a supercluster center.
            self.send_confirms(node, r, r, 0, ctx);
            for (c, dist_c) in group {
                if c == r {
                    continue;
                }
                let weight = (dist_c - depth) + w_vr;
                self.send_confirms(node, c, r, weight, ctx);
            }
        }
    }

    /// Forward or consume at this node's send stride.
    fn act(&mut self, node: usize, ctx: &mut Ctx<'_, ScMsg>) {
        self.done_up[node] = true;
        let slot = self.slot[node].expect("acting nodes are in a tree");
        let is_root = slot.depth == 0;
        let is_hub = self.collected[node].len() >= self.b;
        if is_root {
            // The root is a ruler, hence a center: it consumes everything.
            debug_assert!(self.is_center[node], "rulers are cluster centers");
            self.consume(node, ctx);
        } else if is_hub {
            self.hub_splits.push(node);
            self.consume(node, ctx);
        } else {
            let parent = slot.parent.expect("non-root tree vertices have parents");
            for &(c, d) in &self.collected[node] {
                ctx.send(
                    parent,
                    ScMsg::Up {
                        center: c,
                        dist_root: d,
                    },
                );
            }
            self.collected[node].clear();
        }
    }
}

impl NodeAlgorithm for Supercluster {
    type Msg = ScMsg;

    fn init(&mut self, node: usize, ctx: &mut Ctx<'_, ScMsg>) {
        match self.slot[node] {
            None => {
                self.done_up[node] = true;
            }
            Some(slot) => {
                if self.is_center[node] {
                    self.collected[node].push((node, slot.depth));
                    self.routing[node].insert(node, None);
                }
                if self.send_round(node) == Some(0) {
                    self.act(node, ctx);
                }
            }
        }
    }

    fn round(&mut self, node: usize, inbox: &[(usize, ScMsg)], ctx: &mut Ctx<'_, ScMsg>) {
        for &(from, msg) in inbox {
            match msg {
                ScMsg::Up { center, dist_root } => {
                    debug_assert!(!self.done_up[node], "ups arrive before the send stride");
                    self.collected[node].push((center, dist_root));
                    self.routing[node].insert(center, Some(from));
                }
                ScMsg::Confirm {
                    center,
                    new_center,
                    weight,
                    toward,
                } => {
                    if toward == node {
                        if toward == center {
                            self.record_assignment(center, new_center, weight);
                        } else {
                            self.edges_at[node].push((center, weight));
                            self.formed_center[node] = true;
                        }
                    } else {
                        let child = self.routing[node]
                            .get(&toward)
                            .copied()
                            .flatten()
                            .expect("confirmations retrace announcement routes");
                        ctx.send(
                            child,
                            ScMsg::Confirm {
                                center,
                                new_center,
                                weight,
                                toward,
                            },
                        );
                    }
                }
            }
        }
        if !self.done_up[node] && self.send_round(node) == Some(ctx.round()) {
            self.act(node, ctx);
        }
    }

    fn is_idle(&self, node: usize) -> bool {
        self.done_up[node]
    }

    fn next_wakeup(&self, node: usize, _now: u64) -> Option<u64> {
        if self.done_up[node] {
            None
        } else {
            self.send_round(node)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::forest::BfsForest;
    use super::*;
    use usnae_congest::Simulator;
    use usnae_graph::generators;

    /// Grows a forest from `roots` and runs superclustering; every vertex is
    /// a center (phase 0 conditions).
    fn run_sc(
        g: &usnae_graph::Graph,
        roots: &[usize],
        cap: usize,
        horizon: Dist,
    ) -> (Supercluster, u64) {
        let n = g.num_vertices();
        let mut sim = Simulator::new(g);
        let mut forest = BfsForest::new(n, roots, horizon);
        sim.run(&mut forest, 1_000_000).unwrap();
        let slots: Vec<_> = (0..n).map(|v| forest.slot(v)).collect();
        let mut algo = Supercluster::new(slots, vec![true; n], cap, horizon);
        let rounds = sim.run(&mut algo, 10_000_000).unwrap();
        (algo, rounds)
    }

    #[test]
    fn no_hub_small_tree_everyone_joins_root() {
        let g = generators::path(6).unwrap();
        let (sc, _) = run_sc(&g, &[0], 10, 6);
        for v in 0..6 {
            let (r, w) = sc
                .joined(v)
                .unwrap_or_else(|| panic!("vertex {v} unassigned"));
            assert_eq!(r, 0);
            assert_eq!(w, v as Dist); // tree distance on a path
        }
        assert!(sc.formed_center(0));
        assert_eq!(sc.edges_at(0).len(), 5);
        assert!(sc.hubs().is_empty());
    }

    #[test]
    fn both_endpoints_know_every_edge() {
        let g = generators::gnp_connected(60, 0.08, 3).unwrap();
        let (sc, _) = run_sc(&g, &[0, 59], 2, 20);
        for c in 0..60 {
            if let Some((r, w)) = sc.joined(c) {
                if r != c {
                    assert!(
                        sc.edges_at(r).contains(&(c, w)),
                        "edge ({r},{c},{w}) unknown at supercluster center {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn hub_splitting_fires_on_broom() {
        // A broom funnels many announcements through the hub vertex 0; with
        // a small cap the hub must split.
        let g = generators::broom(12, 2).unwrap(); // 25 vertices, hub 0
        let horizon = 4;
        // Root the tree at an arm end so announcements converge on vertex 0.
        let (sc, _) = run_sc(&g, &[1], 1, horizon); // b = 4
        assert!(!sc.hubs().is_empty(), "expected a hub split");
        for &s in sc.group_sizes() {
            assert!(
                s >= sc.hub_threshold() && s <= 3 * sc.hub_threshold(),
                "group size {s}"
            );
        }
        // Every vertex within the horizon is assigned to exactly one
        // supercluster, and all assignments are mutually known.
        for v in 0..g.num_vertices() {
            if let Some((r, w)) = sc.joined(v) {
                if r != v {
                    assert!(sc.edges_at(r).contains(&(v, w)), "vertex {v} -> {r}");
                }
            }
        }
    }

    #[test]
    fn hub_center_forms_single_supercluster() {
        // Star rooted at a leaf: the hub (vertex 0) is a center and also the
        // funnel point; it should absorb everything itself.
        let g = generators::star(14).unwrap();
        let (sc, _) = run_sc(&g, &[1], 2, 3); // b = 6; hub 0 collects 12 announcements
        assert!(sc.hubs().contains(&0));
        assert!(sc.formed_center(0));
        // Every other leaf joined the supercluster of 0 (weight 1) except
        // the root's own tree seed.
        let mut joined_zero = 0;
        for v in 2..14 {
            if let Some((r, _)) = sc.joined(v) {
                if r == 0 {
                    joined_zero += 1;
                }
            }
        }
        assert!(
            joined_zero >= 10,
            "only {joined_zero} leaves joined the hub"
        );
    }

    #[test]
    fn weights_match_tree_distances() {
        let g = generators::grid2d(7, 7).unwrap();
        let (sc, _) = run_sc(&g, &[24], 100, 12); // generous cap: no hubs
        let forest = usnae_graph::bfs::multi_source_bfs(&g, &[24], 12);
        for v in 0..49 {
            if v == 24 {
                continue;
            }
            let (r, w) = sc.joined(v).unwrap();
            assert_eq!(r, 24);
            assert_eq!(w, forest.dist[v], "vertex {v}");
        }
    }

    #[test]
    fn vertices_outside_horizon_stay_unassigned() {
        let g = generators::path(12).unwrap();
        let (sc, _) = run_sc(&g, &[0], 10, 4);
        for v in 0..12 {
            assert_eq!(sc.joined(v).is_some(), v <= 4, "vertex {v}");
        }
    }

    #[test]
    fn round_cost_bounded_by_stride_budget() {
        let g = generators::grid2d(6, 6).unwrap();
        let horizon = 10;
        let cap = 3;
        let (_, rounds) = run_sc(&g, &[0], cap, horizon);
        let b = (2 * cap + 2) as u64;
        // Up-phase ≤ (T+1)·b; confirmation tail ≤ horizon + pipelining.
        assert!(rounds <= (horizon + 2) * b + 200, "rounds = {rounds}");
    }
}
