//! Task 2 — deterministic distributed ruling sets (substitution S1).
//!
//! The paper invokes \[SEW13, KMW18\] as a black box (Theorem 3.2). We
//! implement deterministic *min-id ball carving*: repeat { every remaining
//! candidate floods its id to depth `D = 2δ_i`; candidates that saw no
//! smaller id join the ruling set; the winners flood a kill wave to depth
//! `D`; dominated candidates retire } until no candidate remains.
//!
//! Guarantees (proved by the tests below):
//!
//! * **separation** ≥ `D + 1 = 2δ_i + 1 = sep_i` — two same-iteration
//!   winners within `D` would see each other's ids and the larger would not
//!   win; later candidates within `D` of a winner retire before winning;
//! * **domination** ≤ `D = 2δ_i ≤ rul_i = (2/ρ)·δ_i` — a candidate only
//!   retires when a winner is within `D`, and every candidate eventually
//!   wins or retires (the minimum-id candidate always wins its iteration).
//!
//! Strictly better domination than the cited `(2/ρ)·δ_i`, so every
//! downstream radius bound holds. Worst-case round complexity is higher
//! (adversarial id chains force many iterations); measured rounds are
//! reported next to the paper's Theorem 3.2 budget in experiment E4.
//!
//! This protocol runs *inside* the CONGEST simulator, so it never shards
//! over host threads — fanning the floods out would fabricate the round
//! and message metrics the drivers report. The centralized counterpart
//! used by fast-centralized/spanner/em19 is
//! [`crate::sai::ruling_set_par`], whose ball carving does shard over
//! `usnae_graph::par` (byte-identically to sequential). Everything here is
//! `Vec`-keyed; candidate and winner sets are kept sorted, so the computed
//! ruling set and the flood schedule are identical run to run.

use usnae_congest::{CongestError, Ctx, NodeAlgorithm, Simulator, Words};
use usnae_graph::Dist;

/// A flooded id with remaining time-to-live; 2 words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flood {
    /// The (candidate or winner) id being flooded.
    pub id: usize,
    /// Hops this message may still travel (0 = absorb, don't forward).
    pub ttl: Dist,
}

impl Words for Flood {
    fn words(&self) -> usize {
        2
    }
}

/// One bounded min-id flood: sources flood their ids to depth `depth`;
/// every vertex ends up knowing the minimum source id within `depth` of it.
#[derive(Debug)]
pub struct MinIdFlood {
    depth: Dist,
    /// Best (smallest) source id each vertex has seen, with the largest
    /// remaining ttl it arrived with.
    best: Vec<Option<(usize, Dist)>>,
    /// Pending improvement to re-broadcast.
    dirty: Vec<bool>,
}

impl MinIdFlood {
    /// Floods from `sources` to depth `depth`.
    pub fn new(n: usize, sources: &[usize], depth: Dist) -> Self {
        let mut best = vec![None; n];
        for &s in sources {
            best[s] = Some((s, depth));
        }
        let dirty = (0..n).map(|v| best[v].is_some()).collect();
        MinIdFlood { depth, best, dirty }
    }

    /// The smallest source id within `depth` of `v`, if any reached it.
    pub fn min_id_near(&self, v: usize) -> Option<usize> {
        self.best[v].map(|(id, _)| id)
    }

    /// Whether any source is within `depth` of `v`.
    pub fn covered(&self, v: usize) -> bool {
        self.best[v].is_some()
    }
}

impl NodeAlgorithm for MinIdFlood {
    type Msg = Flood;

    fn init(&mut self, node: usize, ctx: &mut Ctx<'_, Flood>) {
        if self.dirty[node] {
            self.dirty[node] = false;
            if self.depth > 0 {
                let (id, ttl) = self.best[node].expect("dirty implies known");
                ctx.broadcast(Flood { id, ttl: ttl - 1 });
            }
        }
    }

    fn round(&mut self, node: usize, inbox: &[(usize, Flood)], ctx: &mut Ctx<'_, Flood>) {
        for &(_, msg) in inbox {
            let improves = match self.best[node] {
                None => true,
                Some((id, ttl)) => msg.id < id || (msg.id == id && msg.ttl > ttl),
            };
            if improves {
                self.best[node] = Some((msg.id, msg.ttl));
                self.dirty[node] = true;
            }
        }
        if self.dirty[node] {
            self.dirty[node] = false;
            let (id, ttl) = self.best[node].expect("dirty implies known");
            if ttl > 0 {
                ctx.broadcast(Flood { id, ttl: ttl - 1 });
            }
        }
    }

    fn is_idle(&self, node: usize) -> bool {
        !self.dirty[node]
    }
}

/// Result of a full ruling-set computation.
#[derive(Debug, Clone)]
pub struct RulingSet {
    /// The chosen rulers, ascending.
    pub rulers: Vec<usize>,
    /// Carving iterations used.
    pub iterations: usize,
}

/// Computes a `(2δ+1, 2δ)`-ruling set for `candidates` on `sim`'s graph by
/// iterated min-id ball carving. Rounds accrue on `sim`.
///
/// # Errors
///
/// Propagates [`CongestError`] from the underlying runs (round budget is
/// `max_rounds` per flood).
pub fn compute_ruling_set(
    sim: &mut Simulator<'_>,
    candidates: &[usize],
    delta: Dist,
    max_rounds: u64,
) -> Result<RulingSet, CongestError> {
    let n = sim.graph().num_vertices();
    let depth = delta.saturating_mul(2).min(n as Dist);
    let mut remaining: Vec<usize> = candidates.to_vec();
    remaining.sort_unstable();
    remaining.dedup();
    let mut rulers = Vec::new();
    let mut iterations = 0;
    while !remaining.is_empty() {
        iterations += 1;
        // Wave 1: candidates flood ids; local minima win.
        let mut flood = MinIdFlood::new(n, &remaining, depth);
        sim.run(&mut flood, max_rounds)?;
        let winners: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&c| flood.min_id_near(c) == Some(c))
            .collect();
        debug_assert!(!winners.is_empty(), "the minimum-id candidate always wins");
        // Wave 2: winners flood a kill wave; dominated candidates retire.
        let mut kill = MinIdFlood::new(n, &winners, depth);
        sim.run(&mut kill, max_rounds)?;
        remaining.retain(|&c| !kill.covered(c));
        rulers.extend_from_slice(&winners);
    }
    rulers.sort_unstable();
    Ok(RulingSet { rulers, iterations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use usnae_graph::bfs::bfs;
    use usnae_graph::generators;

    #[test]
    fn flood_reaches_exactly_depth() {
        let g = generators::path(10).unwrap();
        let mut sim = Simulator::new(&g);
        let mut flood = MinIdFlood::new(10, &[0], 3);
        sim.run(&mut flood, 1000).unwrap();
        for v in 0..10 {
            assert_eq!(flood.covered(v), v <= 3, "vertex {v}");
        }
    }

    #[test]
    fn flood_takes_min_over_sources() {
        let g = generators::path(7).unwrap();
        let mut sim = Simulator::new(&g);
        let mut flood = MinIdFlood::new(7, &[2, 5], 10);
        sim.run(&mut flood, 1000).unwrap();
        assert_eq!(flood.min_id_near(0), Some(2));
        assert_eq!(flood.min_id_near(6), Some(2)); // 2 < 5 wins everywhere it reaches
        assert_eq!(flood.min_id_near(4), Some(2));
    }

    #[test]
    fn ruling_set_separation_and_domination() {
        for seed in 0..3u64 {
            let g = generators::gnp_connected(80, 0.05, seed).unwrap();
            let candidates: Vec<usize> = (0..80).step_by(2).collect();
            let delta = 2;
            let mut sim = Simulator::new(&g);
            let rs = compute_ruling_set(&mut sim, &candidates, delta, 1_000_000).unwrap();
            assert!(!rs.rulers.is_empty());
            // Separation > 2δ.
            for (i, &u) in rs.rulers.iter().enumerate() {
                let d = bfs(&g, u);
                for &v in rs.rulers.iter().skip(i + 1) {
                    assert!(d[v].unwrap() > 2 * delta, "seed {seed}: rulers {u},{v}");
                }
            }
            // Domination ≤ 2δ.
            for &c in &candidates {
                let d = bfs(&g, c);
                assert!(
                    rs.rulers
                        .iter()
                        .any(|&r| d[r].is_some_and(|x| x <= 2 * delta)),
                    "seed {seed}: candidate {c} undominated"
                );
            }
        }
    }

    #[test]
    fn ruling_set_on_cycle_needs_multiple_iterations() {
        // Descending ids around a cycle force sequential carving.
        let g = generators::cycle(20).unwrap();
        let candidates: Vec<usize> = (0..20).collect();
        let mut sim = Simulator::new(&g);
        let rs = compute_ruling_set(&mut sim, &candidates, 1, 1_000_000).unwrap();
        assert!(rs.rulers.contains(&0));
        assert!(rs.iterations >= 1);
        // All candidates resolved.
        for &c in &candidates {
            let d = bfs(&g, c);
            assert!(rs.rulers.iter().any(|&r| d[r].is_some_and(|x| x <= 2)));
        }
    }

    #[test]
    fn singleton_candidate_is_its_own_ruler() {
        let g = generators::path(5).unwrap();
        let mut sim = Simulator::new(&g);
        let rs = compute_ruling_set(&mut sim, &[3], 2, 1000).unwrap();
        assert_eq!(rs.rulers, vec![3]);
        assert_eq!(rs.iterations, 1);
    }

    #[test]
    fn empty_candidates_empty_rulers() {
        let g = generators::path(5).unwrap();
        let mut sim = Simulator::new(&g);
        let rs = compute_ruling_set(&mut sim, &[], 2, 1000).unwrap();
        assert!(rs.rulers.is_empty());
        assert_eq!(rs.iterations, 0);
    }

    #[test]
    fn rounds_accumulate_on_simulator() {
        let g = generators::cycle(16).unwrap();
        let mut sim = Simulator::new(&g);
        compute_ruling_set(&mut sim, &(0..16).collect::<Vec<_>>(), 2, 1_000_000).unwrap();
        assert!(sim.metrics().rounds > 0);
        assert!(sim.metrics().messages > 0);
    }
}
