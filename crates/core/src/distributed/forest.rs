//! Task 3a — the BFS ruling forest (§3.1.2).
//!
//! A synchronized multi-source BFS from the ruling set `S_i` to depth
//! `rul_i + δ_i`: every reached vertex adopts the first exploration to
//! arrive (ties within a round broken toward the smaller root id) and
//! remembers its parent, depth and root. Messages are `(root, depth)`
//! pairs; since all sources start simultaneously, each vertex forwards at
//! most once and the run costs ≤ depth+1 rounds.

use usnae_congest::{Ctx, NodeAlgorithm, Words};
use usnae_graph::Dist;

/// BFS adoption message: `(root id, adopter depth)`; 2 words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Adopt {
    /// Root of the exploration.
    pub root: usize,
    /// Depth the *receiver* would adopt at.
    pub depth: Dist,
}

impl Words for Adopt {
    fn words(&self) -> usize {
        2
    }
}

/// Per-vertex forest state after the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeSlot {
    /// The adopted root.
    pub root: usize,
    /// Depth below the root (`= d_G(root, v)`, since explorations are
    /// synchronized BFS waves).
    pub depth: Dist,
    /// BFS parent (`None` at roots).
    pub parent: Option<usize>,
}

/// The distributed BFS-forest protocol.
#[derive(Debug)]
pub struct BfsForest {
    depth_limit: Dist,
    slot: Vec<Option<TreeSlot>>,
    fresh: Vec<bool>,
}

impl BfsForest {
    /// Prepares a forest growth from `roots` to `depth_limit`.
    pub fn new(n: usize, roots: &[usize], depth_limit: Dist) -> Self {
        let mut slot = vec![None; n];
        for &r in roots {
            slot[r] = Some(TreeSlot {
                root: r,
                depth: 0,
                parent: None,
            });
        }
        let fresh = (0..n).map(|v| slot[v].is_some()).collect();
        BfsForest {
            depth_limit,
            slot,
            fresh,
        }
    }

    /// The adopted slot of `v`, if the forest reached it.
    pub fn slot(&self, v: usize) -> Option<TreeSlot> {
        self.slot[v]
    }

    /// Children lists derived from the parent pointers.
    pub fn children(&self) -> Vec<Vec<usize>> {
        let mut children = vec![Vec::new(); self.slot.len()];
        for (v, s) in self.slot.iter().enumerate() {
            if let Some(TreeSlot {
                parent: Some(p), ..
            }) = s
            {
                children[*p].push(v);
            }
        }
        children
    }
}

impl NodeAlgorithm for BfsForest {
    type Msg = Adopt;

    fn init(&mut self, node: usize, ctx: &mut Ctx<'_, Adopt>) {
        if self.fresh[node] {
            self.fresh[node] = false;
            if self.depth_limit > 0 {
                ctx.broadcast(Adopt {
                    root: node,
                    depth: 1,
                });
            }
        }
    }

    fn round(&mut self, node: usize, inbox: &[(usize, Adopt)], ctx: &mut Ctx<'_, Adopt>) {
        if self.slot[node].is_none() {
            // Adopt the smallest root offered this round (all offers share
            // the same depth — synchronized BFS waves).
            let best = inbox.iter().min_by_key(|(_, m)| m.root);
            if let Some(&(from, msg)) = best {
                self.slot[node] = Some(TreeSlot {
                    root: msg.root,
                    depth: msg.depth,
                    parent: Some(from),
                });
                if msg.depth < self.depth_limit {
                    ctx.broadcast(Adopt {
                        root: msg.root,
                        depth: msg.depth + 1,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usnae_congest::Simulator;
    use usnae_graph::bfs::multi_source_bfs;
    use usnae_graph::generators;

    fn grow(g: &usnae_graph::Graph, roots: &[usize], depth: Dist) -> (BfsForest, u64) {
        let mut sim = Simulator::new(g);
        let mut algo = BfsForest::new(g.num_vertices(), roots, depth);
        let rounds = sim.run(&mut algo, 1_000_000).unwrap();
        (algo, rounds)
    }

    #[test]
    fn matches_centralized_forest() {
        let g = generators::grid2d(8, 8).unwrap();
        let roots = [0usize, 63];
        let (algo, _) = grow(&g, &roots, 100);
        let reference = multi_source_bfs(&g, &roots, 100);
        for v in 0..64 {
            let slot = algo.slot(v).expect("connected graph fully covered");
            assert_eq!(Some(slot.root), reference.root[v], "vertex {v}");
            assert_eq!(slot.depth, reference.dist[v], "vertex {v}");
        }
    }

    #[test]
    fn respects_depth_limit() {
        let g = generators::path(12).unwrap();
        let (algo, rounds) = grow(&g, &[0], 4);
        for v in 0..12 {
            assert_eq!(algo.slot(v).is_some(), v <= 4, "vertex {v}");
        }
        assert!(rounds <= 6);
    }

    #[test]
    fn ties_break_to_smaller_root() {
        let g = generators::path(5).unwrap();
        let (algo, _) = grow(&g, &[0, 4], 10);
        assert_eq!(algo.slot(2).unwrap().root, 0);
        assert_eq!(algo.slot(3).unwrap().root, 4);
    }

    #[test]
    fn children_invert_parents() {
        let g = generators::binary_tree(15).unwrap();
        let (algo, _) = grow(&g, &[0], 10);
        let children = algo.children();
        assert_eq!(children[0].len(), 2);
        for v in 1..15 {
            let p = algo.slot(v).unwrap().parent.unwrap();
            assert!(children[p].contains(&v));
        }
    }

    #[test]
    fn depth_zero_covers_only_roots() {
        let g = generators::path(4).unwrap();
        let (algo, rounds) = grow(&g, &[2], 0);
        assert!(algo.slot(2).is_some());
        assert!(algo.slot(1).is_none());
        assert_eq!(rounds, 0);
    }
}
