//! Shared primitives of the ruling-set-based SAI constructions (§3.3, §4).

use crate::exec::ChunkPolicy;
use usnae_graph::partition::ShardView;
use usnae_graph::{par, Dist, Graph, VertexId};

/// Bounded-BFS exploration record from one center: distances plus BFS-tree
/// parents, so interconnection paths can be reconstructed (§4 adds the whole
/// path to the spanner).
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Origin of the exploration.
    pub source: VertexId,
    /// `dist[v]` within the depth bound, else `None`.
    pub dist: Vec<Option<Dist>>,
    /// BFS parents toward `source`.
    pub parent: Vec<Option<VertexId>>,
}

impl Exploration {
    /// Runs a bounded BFS from `source` to `depth`.
    ///
    /// Generic over [`ShardView`]: the exploration reads the shared
    /// adjacency array or per-worker CSR shards interchangeably, with
    /// identical output.
    pub fn run<V: ShardView + ?Sized>(g: &V, source: VertexId, depth: Dist) -> Self {
        let n = g.num_vertices();
        let mut dist = vec![None; n];
        let mut parent = vec![None; n];
        let mut queue = std::collections::VecDeque::new();
        dist[source] = Some(0);
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            let du = dist[u].expect("queued vertices have distances");
            if du == depth {
                continue;
            }
            for &v in g.neighbors(u) {
                if dist[v].is_none() {
                    dist[v] = Some(du + 1);
                    parent[v] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        Exploration {
            source,
            dist,
            parent,
        }
    }

    /// Shortest path from `source` to `v` (inclusive), or `None` if `v` was
    /// not reached.
    pub fn path_to(&self, v: VertexId) -> Option<Vec<VertexId>> {
        self.dist[v]?;
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur] {
            path.push(p);
            cur = p;
        }
        debug_assert_eq!(*path.last().expect("path nonempty"), self.source);
        path.reverse();
        Some(path)
    }

    /// Centers (per `is_center`) within the exploration radius, excluding the
    /// source, with their distances.
    pub fn centers_found(&self, is_center: &[bool]) -> Vec<(VertexId, Dist)> {
        self.dist
            .iter()
            .enumerate()
            .filter_map(|(v, d)| d.map(|d| (v, d)))
            .filter(|&(v, _)| v != self.source && is_center[v])
            .collect()
    }
}

/// Deterministic greedy min-id ball carving (substitution S1): a ruling set
/// for `w` with pairwise separation ≥ `2δ + 1` and domination ≤ `2δ`.
pub fn ruling_set(g: &Graph, w: &[VertexId], delta: Dist) -> Vec<VertexId> {
    ruling_set_par(g, w, delta, 1)
}

/// [`ruling_set`] with the ball carving sharded over `threads` via the
/// `usnae_graph::par` fan-out — **byte-identical** to the sequential run
/// for every thread count.
///
/// The greedy selection itself is order-dependent (a candidate is skipped
/// iff an earlier-chosen ball already dominates it), so only the *balls*
/// parallelize: a chunk of still-undominated candidates is prefetched
/// concurrently, then consumed strictly in ascending-id order, re-checking
/// each candidate's domination status at consumption time. A ball whose
/// candidate got dominated within its own chunk is discarded — wasted work
/// only, never a different ruling set. The chunk size adapts via
/// [`ChunkPolicy`] (pinned to 1 at `threads == 1`: exactly the historical
/// lazy loop). Generic over [`ShardView`]: the carving reads local CSR
/// shards or the shared array with identical output.
pub fn ruling_set_par<V: ShardView + ?Sized>(
    g: &V,
    w: &[VertexId],
    delta: Dist,
    threads: usize,
) -> Vec<VertexId> {
    ruling_set_impl(g.num_vertices(), w, delta, threads, |batch, depth| {
        par::balls(g, batch, depth, threads)
    })
}

/// The carving loop itself, parameterized over the ball provider so the
/// same greedy selection runs against the in-process fan-out
/// ([`ruling_set_par`]) or a worker pool (`Engine::ruling_set`) with
/// byte-identical output — the provider only changes *where* the balls
/// are computed, never their contents.
pub(crate) fn ruling_set_impl(
    n: usize,
    w: &[VertexId],
    delta: Dist,
    threads: usize,
    mut balls_of: impl FnMut(&[VertexId], Dist) -> Vec<Vec<(VertexId, Dist)>>,
) -> Vec<VertexId> {
    let mut sorted = w.to_vec();
    sorted.sort_unstable();
    let two_delta = delta.saturating_mul(2);
    let mut dominated = vec![false; n];
    let mut chosen = Vec::new();
    let mut policy = ChunkPolicy::new(threads);
    let mut next = 0;
    while next < sorted.len() {
        // Prefetch balls for the next chunk of currently-undominated
        // candidates; earlier chunks' carving already pruned most of them.
        let mut batch: Vec<VertexId> = Vec::new();
        while next < sorted.len() && batch.len() < policy.chunk() {
            let cand = sorted[next];
            next += 1;
            if !dominated[cand] {
                batch.push(cand);
            }
        }
        if batch.is_empty() {
            continue;
        }
        // Sparse balls (reused per-shard scratch) keep the in-flight memory
        // proportional to the reached vertices, not chunk × n.
        let balls = balls_of(&batch, two_delta);
        let mut used = 0;
        for (&cand, ball) in batch.iter().zip(&balls) {
            if dominated[cand] {
                continue; // carved away by an earlier ball in this chunk
            }
            used += 1;
            chosen.push(cand);
            for &(v, _) in ball {
                dominated[v] = true;
            }
        }
        policy.record(batch.len(), used);
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use usnae_graph::generators;

    #[test]
    fn exploration_matches_bfs() {
        let g = generators::grid2d(6, 6).unwrap();
        let e = Exploration::run(&g, 0, 4);
        let d = usnae_graph::bfs::bfs_bounded(&g, 0, 4);
        assert_eq!(e.dist, d);
    }

    #[test]
    fn path_reconstruction_is_shortest() {
        let g = generators::grid2d(5, 5).unwrap();
        let e = Exploration::run(&g, 0, 10);
        let p = e.path_to(24).unwrap();
        assert_eq!(p.first(), Some(&0));
        assert_eq!(p.last(), Some(&24));
        assert_eq!(p.len() as u64 - 1, e.dist[24].unwrap());
        // Consecutive vertices are adjacent.
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn path_to_unreached_is_none() {
        let g = generators::path(10).unwrap();
        let e = Exploration::run(&g, 0, 3);
        assert!(e.path_to(7).is_none());
        assert!(e.path_to(3).is_some());
    }

    #[test]
    fn centers_found_filters() {
        let g = generators::path(6).unwrap();
        let mut is_center = vec![false; 6];
        is_center[0] = true;
        is_center[2] = true;
        is_center[5] = true;
        let e = Exploration::run(&g, 0, 3);
        let found = e.centers_found(&is_center);
        assert_eq!(found, vec![(2, 2)]); // 5 beyond depth; 0 is the source
    }

    #[test]
    fn ruling_set_on_cycle() {
        let g = generators::cycle(30).unwrap();
        let w: Vec<usize> = (0..30).collect();
        let delta = 2;
        let rulers = ruling_set(&g, &w, delta);
        // Separation > 2δ = 4 on a cycle of 30 → at most 6 rulers; ≥ 30/5.
        assert!(rulers.len() <= 6 && rulers.len() >= 5, "{rulers:?}");
        assert_eq!(rulers[0], 0); // min id always chosen first
    }

    #[test]
    fn ruling_set_empty_input() {
        let g = generators::path(4).unwrap();
        assert!(ruling_set(&g, &[], 3).is_empty());
        for threads in [1usize, 4] {
            assert!(ruling_set_par(&g, &[], 3, threads).is_empty());
        }
    }

    #[test]
    fn parallel_carving_is_byte_identical_to_sequential() {
        for seed in [1u64, 5, 12] {
            let g = generators::gnp_connected(240, 0.04, seed).unwrap();
            for delta in [1u64, 2, 4] {
                let w: Vec<usize> = (0..240).step_by(2).collect();
                let sequential = ruling_set(&g, &w, delta);
                for threads in [2usize, 4, 8] {
                    assert_eq!(
                        ruling_set_par(&g, &w, delta, threads),
                        sequential,
                        "seed={seed} delta={delta} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_carving_handles_duplicate_candidates() {
        let g = generators::cycle(40).unwrap();
        let mut w: Vec<usize> = (0..40).collect();
        w.extend(0..40); // duplicates must not double-select
        let sequential = ruling_set(&g, &w, 2);
        assert_eq!(ruling_set_par(&g, &w, 2, 4), sequential);
        let unique: std::collections::HashSet<_> = sequential.iter().collect();
        assert_eq!(unique.len(), sequential.len());
    }
}
