//! Hopset-style use of near-additive emulators.
//!
//! §1.1 recounts the strong connection between near-additive emulators and
//! *hopsets* \[EN16a, EN17a, HP17\]: adding emulator edges to `G` lets
//! few-hop paths approximate true distances, the workhorse of parallel and
//! distributed approximate-shortest-path algorithms (Cohen '94 onward).
//!
//! This module provides the mechanism — hop-bounded distances over
//! `G ∪ H` — and the measurement: the smallest hop budget `t` at which
//! `d^(t)_{G∪H}(u,v) ≤ (1+ε)·d_G(u,v) + β` holds for a pair set. SAI
//! emulators make `t` collapse far below the graph distance because one
//! emulator edge teleports across a whole supercluster.

use crate::emulator::Emulator;
use usnae_graph::{Dist, Graph, VertexId, INF};

/// Hop-bounded single-source distances over `G ∪ H`.
///
/// Returns `dist[t][v] = d^(t)(source, v)`: the shortest weighted distance
/// from `source` to `v` using at most `t` edges of the union (graph edges
/// have weight 1, emulator edges their weight), for `t ∈ 0..=hop_limit`.
///
/// Bellman-Ford layering: `O(hop_limit · (|E| + |H|))`.
///
/// # Example
///
/// ```
/// use usnae_core::hopset::bounded_hop_distances;
/// use usnae_core::Emulator;
/// use usnae_graph::generators;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generators::path(6)?;
/// let h = Emulator::new(6); // empty emulator: hops = graph hops
/// let d = bounded_hop_distances(&g, &h, 0, 3);
/// assert_eq!(d[3][3], Some(3)); // reachable in 3 hops
/// assert_eq!(d[3][5], None);    // 5 hops needed
/// # Ok(())
/// # }
/// ```
pub fn bounded_hop_distances(
    g: &Graph,
    h: &Emulator,
    source: VertexId,
    hop_limit: usize,
) -> Vec<Vec<Option<Dist>>> {
    let n = g.num_vertices();
    let mut layers: Vec<Vec<Dist>> = Vec::with_capacity(hop_limit + 1);
    let mut current = vec![INF; n];
    current[source] = 0;
    layers.push(current.clone());
    for _ in 1..=hop_limit {
        let prev = layers.last().expect("at least layer 0");
        let mut next = prev.clone();
        for (u, &du) in prev.iter().enumerate() {
            if du == INF {
                continue;
            }
            for &v in g.neighbors(u) {
                let nd = du + 1;
                if nd < next[v] {
                    next[v] = nd;
                }
            }
            for (v, w) in h.graph().neighbors(u) {
                let nd = du.saturating_add(w);
                if nd < next[v] {
                    next[v] = nd;
                }
            }
        }
        layers.push(next);
    }
    layers
        .into_iter()
        .map(|layer| {
            layer
                .into_iter()
                .map(|d| if d == INF { None } else { Some(d) })
                .collect()
        })
        .collect()
}

/// Outcome of a hopbound measurement over a pair set.
#[derive(Debug, Clone, PartialEq)]
pub struct HopboundReport {
    /// Pairs measured (connected in `G`).
    pub pairs_checked: usize,
    /// Smallest `t` such that *every* measured pair satisfied
    /// `d^(t) ≤ α·d_G + β`; `None` if `hop_limit` was not enough.
    pub hopbound: Option<usize>,
    /// Per-`t` count of pairs already satisfying the bound at `t` hops.
    pub satisfied_at: Vec<usize>,
}

/// Measures the empirical hopbound of `G ∪ H` against the `(α, β)` target.
///
/// Pairs disconnected in `G` are skipped. `exact[i]` must be
/// `d_G(pairs[i].0, pairs[i].1)` (e.g. from
/// [`exact_pair_distances`](usnae_graph::distance::exact_pair_distances)).
pub fn measure_hopbound(
    g: &Graph,
    h: &Emulator,
    pairs: &[(VertexId, VertexId)],
    exact: &[Option<Dist>],
    alpha: f64,
    beta: f64,
    hop_limit: usize,
) -> HopboundReport {
    let mut satisfied_at = vec![0usize; hop_limit + 1];
    let mut pairs_checked = 0usize;
    // Group by source.
    let mut by_source: std::collections::HashMap<VertexId, Vec<usize>> = Default::default();
    for (i, &(u, _)) in pairs.iter().enumerate() {
        by_source.entry(u).or_default().push(i);
    }
    for (source, indices) in by_source {
        let layers = bounded_hop_distances(g, h, source, hop_limit);
        for i in indices {
            let (_, v) = pairs[i];
            let Some(dg) = exact[i] else { continue };
            pairs_checked += 1;
            let target = alpha * dg as f64 + beta;
            for (t, layer) in layers.iter().enumerate() {
                if let Some(dt) = layer[v] {
                    if dt as f64 <= target + 1e-9 {
                        satisfied_at[t] += 1;
                        break;
                    }
                }
            }
        }
    }
    // Prefix sums: satisfied within ≤ t hops.
    let mut cumulative = satisfied_at.clone();
    for t in 1..cumulative.len() {
        cumulative[t] += cumulative[t - 1];
    }
    let hopbound = cumulative.iter().position(|&c| c == pairs_checked);
    HopboundReport {
        pairs_checked,
        hopbound,
        satisfied_at: cumulative,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::{build_centralized, ProcessingOrder};
    use crate::params::CentralizedParams;
    use usnae_graph::distance::{exact_pair_distances, sample_pairs};
    use usnae_graph::generators;

    #[test]
    fn layers_are_monotone_and_converge_to_dijkstra() {
        let g = generators::grid2d(6, 6).unwrap();
        let p = CentralizedParams::new(0.5, 3).unwrap();
        let h = build_centralized(&g, &p, ProcessingOrder::ById).0;
        let layers = bounded_hop_distances(&g, &h, 0, 40);
        // Monotone in t.
        for t in 1..layers.len() {
            for (v, &cur) in layers[t].iter().enumerate().take(36) {
                match (layers[t - 1][v], cur) {
                    (Some(a), Some(b)) => assert!(b <= a),
                    (Some(_), None) => panic!("distance vanished"),
                    _ => {}
                }
            }
        }
        // At a large hop budget the distances equal min(d_G, d_{G∪H}) —
        // which is d_G here since H never shortens.
        let dg = usnae_graph::bfs::bfs(&g, 0);
        let last = layers.last().unwrap();
        for v in 0..36 {
            assert_eq!(last[v], dg[v], "vertex {v}");
        }
    }

    #[test]
    fn hop_zero_reaches_only_source() {
        let g = generators::path(5).unwrap();
        let h = Emulator::new(5);
        let layers = bounded_hop_distances(&g, &h, 2, 0);
        assert_eq!(layers.len(), 1);
        assert_eq!(layers[0][2], Some(0));
        assert_eq!(layers[0][1], None);
    }

    #[test]
    fn emulator_collapses_hopbound_on_high_diameter_graphs() {
        // On a cycle, pure-G paths need d hops; with a superclustered
        // emulator a few hops suffice for the (α, β) target.
        let g = generators::cycle(100).unwrap();
        let p = CentralizedParams::with_raw_epsilon(0.5, 8).unwrap();
        // Hubs-first ordering superclusters the cycle into long-range arcs.
        let (h, _) = build_centralized(&g, &p, ProcessingOrder::ByDegreeDesc);
        let (alpha, beta) = p.certified_stretch();
        let pairs = sample_pairs(&g, 80, 3);
        let exact = exact_pair_distances(&g, &pairs);
        let report = measure_hopbound(&g, &h, &pairs, &exact, alpha, beta, 60);
        assert_eq!(report.pairs_checked, 80);
        let hopbound = report.hopbound.expect("60 hops must suffice on C_100");
        assert!(hopbound <= 60);
    }

    #[test]
    fn hopbound_with_target_beta_zero_alpha_one_is_graph_diameter_hops() {
        let g = generators::path(20).unwrap();
        let h = Emulator::new(20); // empty emulator
        let pairs = vec![(0usize, 19usize)];
        let exact = exact_pair_distances(&g, &pairs);
        let report = measure_hopbound(&g, &h, &pairs, &exact, 1.0, 0.0, 25);
        assert_eq!(report.hopbound, Some(19));
    }

    #[test]
    fn insufficient_hop_limit_reports_none() {
        let g = generators::path(20).unwrap();
        let h = Emulator::new(20);
        let pairs = vec![(0usize, 19usize)];
        let exact = exact_pair_distances(&g, &pairs);
        let report = measure_hopbound(&g, &h, &pairs, &exact, 1.0, 0.0, 5);
        assert_eq!(report.hopbound, None);
    }
}
