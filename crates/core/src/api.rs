//! The unified construction API: one builder, one config, one registry.
//!
//! Every emulator/spanner algorithm in the workspace — the four paper
//! constructions here, the four baselines via the adapter in
//! `usnae-baselines` — is reachable through the same three entry points:
//!
//! * [`EmulatorBuilder`] — a fluent, validated front door for one-off
//!   builds: pick an [`Algorithm`], set `ε/κ/ρ`, processing order, raw-ε
//!   mode, tracing, worker threads, and get a [`BuildOutput`] carrying the
//!   emulator, the certified `(α, β)` pair, optional per-phase traces,
//!   execution stats ([`BuildStats`]) and (for CONGEST constructions) the
//!   simulator metrics. `.threads(n)` shards the per-center explorations
//!   (phase 0's dominant cost) over `n` workers; the output is
//!   byte-identical to the sequential build for every thread count.
//! * [`Construction`] — the object-safe trait each algorithm implements, so
//!   experiments, benchmarks and the CLI can treat all of them uniformly.
//! * [`registry`] — the catalogue of paper constructions
//!   ([`registry::all`]); `usnae_baselines::registry::all` extends it with
//!   the baseline lineages.
//!
//! # Determinism guarantee
//!
//! Every registry construction is a **pure function of
//! `(graph, BuildConfig)`**: the built edge stream (insertion order and
//! provenance included), the trace, and the certified `(α, β)` pair are
//! identical for every thread count *and* for every run — including the
//! CONGEST simulations, whose drivers emit edges in a defined order
//! (ascending center/neighbor id) and whose simulator schedules messages
//! deterministically. [`BuildStats`] is the one thread-sensitive corner:
//! wall-clock durations always vary, and `stats.threads` / per-phase
//! exploration counters reflect the requested fan-out (the adaptive
//! prefetch launches more — wasted, output-irrelevant — explorations at
//! higher thread counts); the counters are still *run*-invariant for a
//! fixed thread count, so cache keys should fingerprint the edge stream
//! ([`BuildOutput::stream_fingerprint`]), never the stats.
//! The workspace parity suite (`tests/parallel_determinism.rs`) enforces
//! both invariances, exact-stream, with no per-algorithm exceptions; this
//! is the foundation for caching built emulators and validating sharded
//! merges against a fixed reference.
//!
//! # Caching
//!
//! Because every construction is a pure function of `(graph, config)`, a
//! built output can be stored once and reused by every later process:
//! [`EmulatorBuilder::cache_dir`] (or the CLI's `usnae run --cache DIR`)
//! keys a directory of on-disk snapshots by **(canonical graph
//! fingerprint, algorithm name, output-relevant config digest)** — see
//! [`crate::cache`]. A warm hit is safe exactly when the determinism
//! guarantee above holds, and it is *checked*, not assumed: each snapshot
//! stores the [`stream fingerprint`](BuildOutput::stream_fingerprint) of
//! the exact insertion stream, a load recomputes it from the decoded
//! records (plus a whole-file checksum), and anything that fails falls
//! back to a rebuild. Hits are visible in [`BuildStats`]: `stats.cache ==
//! CacheStatus::Hit` with an empty phase list, because no phase work ran.
//! Two deliberate non-keys: `threads` (any thread count produces the same
//! stream, so one entry serves all) and `traced` (traced builds bypass the
//! cache — snapshots store the stream, not the in-memory [`Trace`]).
//! `usnae cache {ls,clear,verify}` manages a cache directory; `verify`
//! recomputes every stored fingerprint, and CI runs the same check.
//! The builder's directory cache is unbounded and append-only — right
//! for one-shot runs, wrong for a long-running process. Services use
//! [`EvictingCache`](crate::cache::EvictingCache), the byte-budgeted
//! view of the same directory format: deterministic LRU-by-bytes
//! eviction, atomic publication (temp file + rename), lock-free
//! concurrent readers, and counters for the `usnae serve` daemon's
//! `stats` endpoint ([`crate::serve`]) — an evicted entry simply
//! rebuilds read-through on its next use, provably byte-identical.
//!
//! # Partitioned builds
//!
//! [`EmulatorBuilder::partition`] (CLI: `usnae run --shards N
//! [--partition range|degree-balanced]`) splits the input graph into
//! per-worker **CSR shards** — contiguous vertex ranges with their own
//! local adjacency arrays and cut-edge frontier lists (see
//! `usnae_graph::partition`) — and the per-center explorations of
//! `centralized`, `fast-centralized`, `spanner`, `ep01`, `en17a`, and
//! `em19` then read from the local shards instead of the one shared
//! adjacency array. Because each shard stores its owned neighbor lists
//! verbatim, the sharded build is **byte-identical** (stream, trace, and
//! fingerprint) to the unsharded one for every shard count and both
//! partition policies — enforced registry-wide by
//! `tests/partition_conformance.rs` and a CI `shard-matrix` leg, with
//! golden reference streams in `tests/data/` catching shard-merge
//! regressions without rebuilding the oracle. A partitioned build reports
//! one [`ShardTiming`](crate::exec::ShardTiming) per shard in
//! [`BuildStats::shards`] (owned vertices, local/cut edges, layout build
//! time); the CONGEST simulations and `tz06` accept the knobs but keep
//! the shared array — they run no sharded exploration phase. `shards`
//! and the policy are deliberately **not** part of the cache key
//! ([`BuildConfig::stable_digest`]): one cached entry serves every
//! layout, exactly like `threads`.
//!
//! # Distributed execution
//!
//! [`EmulatorBuilder::transport`] (CLI: `usnae run --transport
//! {inproc,channel,process}`) moves the sharded exploration phases from
//! the in-process fan-out to a **worker pool**: one worker per CSR shard,
//! each owning its shard's adjacency and answering typed frontier
//! messages through a [`TransportKind`] —
//!
//! * [`TransportKind::Inproc`] (default) — no pool; the explorations read
//!   the layout directly, as in a plain partitioned build.
//! * [`TransportKind::Channel`] — one OS thread per shard, bounded
//!   channels, a deterministic round barrier.
//! * [`TransportKind::Process`] — one child process per shard speaking a
//!   length-prefixed, checksummed binary protocol over stdin/stdout (the
//!   `usnae-worker` binary; see `usnae_workers`).
//!
//! A worker transport requires a partitioned layout (`shards >= 1`;
//! validated as [`ParamError::TransportNeedsShards`](crate::error::ParamError)).
//! The round protocol is deterministic — per-round results are merged in
//! shard order before the driver consumes them — so the built stream,
//! trace, and fingerprint are **byte-identical** to the shared-array
//! build for every transport; `tests/worker_conformance.rs` enforces this
//! registry-wide, including under randomized worker delays. What *does*
//! change is [`BuildStats`]: `stats.transport` records the transport that
//! ran and `stats.messages` carries the measured [`MessageStats`]
//! (rounds, messages, bytes, per-shard-pair breakdown). Worker failures
//! never corrupt an output — the phases fall back in-process and the
//! build fails loudly with [`BuildError::Worker`] — and every worker
//! build re-merges the partitioned layout before returning. Like
//! `threads` and `shards`, the transport is **not** part of the cache
//! key: one cached entry serves every execution strategy.
//!
//! # Query serving
//!
//! The construction side ends at a [`BuildOutput`]; the serving side
//! starts at a [`QueryEngine`] (see [`crate::oracle`]). The builder's
//! terminal [`EmulatorBuilder::query_engine`] is the one-liner — build
//! (through the cache when configured) and serve:
//!
//! ```
//! use usnae_core::api::Emulator;
//! use usnae_graph::generators;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = generators::grid2d(8, 8)?;
//! let engine = Emulator::builder(&g).kappa(4).query_engine()?;
//! let d = engine.distance(0, 63);
//! // Every answer is certified: d_G(u,v) <= d.value <= α·d_G(u,v) + β.
//! assert!(d.value.is_some() && d.alpha >= 1.0);
//! # Ok(())
//! # }
//! ```
//!
//! An engine can also be opened over any [`OutputBackend`] — in
//! particular a [`SnapshotBackend`] over a cache entry, so a stored
//! build answers queries in a later process **without re-running the
//! construction** ([`QueryEngine::open`]); the backend carries the
//! certified `(α, β)` pair with the stream ([`OutputBackend::certified`]).
//! Batched lookups ([`QueryEngine::distances`]) share SSSP trees across
//! the batch, single lookups go through a bounded, deterministic
//! per-source LRU, and [`QueryEngine::with_landmarks`] precomputes a
//! highest-degree-first landmark index for O(k) approximate answers
//! under a *measured* certificate `(α, β + 2R)` (`R` = covering
//! radius). Answers are a pure function of the pair queried — cache
//! state, batching, backends, and thread counts never change them
//! (`tests/query_conformance.rs` enforces this registry-wide).
//!
//! # Out-of-core storage
//!
//! Neither end of that pipeline needs its big array on the heap. Every
//! graph view in `usnae_graph` is generic over an `AdjStorage` backend:
//! [`Graph`](usnae_graph::Graph) is the heap CSR,
//! [`MappedGraph`](usnae_graph::MappedGraph) the file-backed one
//! (`Graph::write_csr_file` → `MappedGraph::open`, or
//! `usnae_graph::io::stream_edge_list_to_csr_file`, which two-passes a
//! text edge list straight into a CSR file without ever materializing
//! the graph). [`Construction::build_mapped`] runs a construction over
//! the mapped file — the output is byte-identical to the heap build, and
//! the cache key fingerprints identically, so one cache serves both
//! storages. On the serving end, [`MappedBackend`] opens a stored v4
//! snapshot and [`QueryEngine::open`] answers queries **zero-copy** from
//! its mmap'd `EMU_CSR` section: no record decode, no heap emulator,
//! resident memory bounded by the (ultra-sparse) snapshot rather than
//! the graph. `tests/out_of_core_conformance.rs` locks both identities
//! registry-wide; CI's `out-of-core` job additionally enforces the
//! peak-RSS ceilings on an 800k-vertex, degree-32 pipeline.
//!
//! ```
//! use usnae_core::api::{registry, BuildConfig, MappedBackend, QueryEngine};
//! use usnae_core::cache::{CacheKey, Snapshot};
//! use usnae_graph::{generators, MappedGraph};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dir = std::env::temp_dir().join(format!("usnae-ooc-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir)?;
//! // A CSR file on disk (the streaming loader writes these straight
//! // from a text edge list; here one is spelled from a small graph).
//! let g = generators::grid2d(8, 8)?;
//! let csr = dir.join("grid.csr");
//! g.write_csr_file(&csr)?;
//!
//! // Build over the file-backed graph; store the snapshot.
//! let mg = MappedGraph::open(&csr)?;
//! let cfg = BuildConfig::default();
//! let c = registry::find("centralized").expect("registered");
//! let out = c.build_mapped(&mg, &cfg)?;
//! let snap = dir.join("grid.usnae");
//! let entry = Snapshot::from_output(CacheKey::new(&mg, c.name(), &cfg), &out);
//! std::fs::write(&snap, entry.encode())?;
//!
//! // Serve it zero-copy: no graph, no decode, no heap emulator.
//! let backend = MappedBackend::open(&snap)?;
//! let engine = QueryEngine::open(&backend)?;
//! assert!(engine.emulator().is_none());
//! let served = engine.distance(0, 63);
//! assert_eq!(served.value, out.into_query_engine().distance(0, 63).value);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```
//!
//! # Quickstart
//!
//! ```
//! use usnae_core::api::{Algorithm, Emulator};
//! use usnae_graph::generators;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = generators::gnp_connected(200, 0.05, 7)?;
//! let out = Emulator::builder(&g)
//!     .epsilon(0.5)
//!     .kappa(4)
//!     .threads(2) // shard phase-0 explorations; output identical to threads(1)
//!     .algorithm(Algorithm::Centralized)
//!     .build()?;
//! // Determinism: rebuilding with the same config — at any thread count —
//! // reproduces the exact same edge stream.
//! let again = Emulator::builder(&g)
//!     .epsilon(0.5)
//!     .kappa(4)
//!     .algorithm(Algorithm::Centralized)
//!     .build()?;
//! assert_eq!(out.emulator.provenance(), again.emulator.provenance());
//! let (alpha, beta) = out.certified.expect("paper constructions certify stretch");
//! assert!(alpha >= 1.0 && beta >= 0.0);
//! assert!(out.emulator.num_edges() as f64 <= out.size_bound.unwrap());
//! assert_eq!(out.stats.threads, 2); // wall-clock stats ride along
//! # Ok(())
//! # }
//! ```
//!
//! The registry drives algorithm-generic code:
//!
//! ```
//! use usnae_core::api::{registry, BuildConfig};
//! use usnae_graph::generators;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = generators::grid2d(8, 8)?;
//! let cfg = BuildConfig::default();
//! for c in registry::all() {
//!     let out = c.build(&g, &cfg)?;
//!     assert!(out.emulator.num_edges() > 0, "{}", c.name());
//! }
//! # Ok(())
//! # }
//! ```

pub mod backend;
pub mod config;
pub mod construction;
pub mod constructions;
pub mod output;
pub mod registry;

pub use crate::cache::CacheConfig;
pub use crate::cache::{MappedEmulator, MappedSnapshot};
pub use crate::centralized::ProcessingOrder;
pub use crate::emulator::Emulator;
pub use crate::exec::{MessageStats, PairStats, TransportKind, WORKERS_ADDR_ENV};
pub use crate::oracle::{Certified, EmStore, LandmarkIndex, QueryEngine, QueryStats};
pub use backend::{
    HeapBackend, MappedBackend, OutputBackend, PartitionedBackend, RemotePartitionedBackend,
    SnapshotBackend, REMOTE_FETCH_CHUNK,
};
pub use config::{Algorithm, BuildConfig};
pub use construction::{require_inproc, BuildError, Construction, Supports};
pub use output::{
    BuildOutput, BuildStats, CacheStatus, CongestStats, PhaseSummary, PhaseTiming, Trace,
};
pub use usnae_graph::partition::{PartitionPolicy, ShardTiming};

use usnae_graph::Graph;

/// Fluent builder over the paper constructions.
///
/// Obtained from [`Emulator::builder`]; terminal [`build`](Self::build)
/// validates the parameters, runs the selected [`Algorithm`], and returns a
/// [`BuildOutput`].
#[derive(Debug, Clone)]
pub struct EmulatorBuilder<'g> {
    graph: &'g Graph,
    algorithm: Algorithm,
    config: BuildConfig,
    cache: Option<CacheConfig>,
}

impl<'g> EmulatorBuilder<'g> {
    /// Starts a builder over `g` with [`Algorithm::Centralized`] and the
    /// default [`BuildConfig`].
    pub fn new(graph: &'g Graph) -> Self {
        EmulatorBuilder {
            graph,
            algorithm: Algorithm::Centralized,
            config: BuildConfig::default(),
            cache: None,
        }
    }

    /// Selects the construction to run.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the stretch parameter `ε` (validated at build time).
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.config.epsilon = epsilon;
        self
    }

    /// Sets the sparsity parameter `κ`.
    pub fn kappa(mut self, kappa: u32) -> Self {
        self.config.kappa = kappa;
        self
    }

    /// Sets the round exponent `ρ` (used by the §3/§4 constructions).
    pub fn rho(mut self, rho: f64) -> Self {
        self.config.rho = rho;
        self
    }

    /// Skips the paper's ε-rescaling (see
    /// [`CentralizedParams::with_raw_epsilon`](crate::params::CentralizedParams::with_raw_epsilon)).
    pub fn raw_epsilon(mut self, raw: bool) -> Self {
        self.config.raw_epsilon = raw;
        self
    }

    /// Sets the center processing order (Algorithm 1 only; others ignore it).
    pub fn order(mut self, order: ProcessingOrder) -> Self {
        self.config.order = order;
        self
    }

    /// Retains the per-phase [`Trace`] on the output.
    pub fn traced(mut self, traced: bool) -> Self {
        self.config.traced = traced;
        self
    }

    /// Seed for randomized constructions (the baselines; paper constructions
    /// are deterministic and ignore it).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Worker threads for the sharded exploration phases (default 1 =
    /// sequential; must be ≥ 1, validated at build time). The built
    /// structure is byte-identical for every thread count — only
    /// [`BuildOutput::stats`] timings change.
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Partitioned-graph layout: split the input into `shards` per-worker
    /// CSR shards under `policy` and run the per-center explorations
    /// against the local shards instead of the shared adjacency array
    /// (`shards == 0`, the default, keeps the shared array). The built
    /// structure is byte-identical for every `(policy, shards)`; the
    /// per-shard layout records land in [`BuildStats::shards`].
    pub fn partition(
        mut self,
        policy: usnae_graph::partition::PartitionPolicy,
        shards: usize,
    ) -> Self {
        self.config.partition = policy;
        self.config.shards = shards;
        self
    }

    /// Execution transport for the sharded exploration phases (default
    /// [`TransportKind::Inproc`]; worker transports require
    /// [`partition`](Self::partition) with `shards >= 1`, validated at
    /// build time). The built structure is byte-identical for every
    /// transport; a worker build additionally reports its measured
    /// [`MessageStats`] in [`BuildStats::messages`]. See the
    /// [module docs](self#distributed-execution).
    pub fn transport(mut self, transport: TransportKind) -> Self {
        self.config.transport = transport;
        self
    }

    /// Consults (and fills) the read-write construction cache rooted at
    /// `dir`: a warm entry for this `(graph, algorithm, config)` is loaded,
    /// verified against its stored stream fingerprint, and returned without
    /// running any phase (`stats.cache == CacheStatus::Hit`); otherwise the
    /// construction runs and the result is stored. See [`crate::cache`].
    pub fn cache_dir(self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.cache(CacheConfig::new(dir))
    }

    /// Like [`cache_dir`](Self::cache_dir) with explicit read/write
    /// control (e.g. a read-only cache for reproducibility audits).
    pub fn cache(mut self, cache: CacheConfig) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The accumulated configuration.
    pub fn config(&self) -> &BuildConfig {
        &self.config
    }

    /// Runs the selected construction (through the construction cache when
    /// one was configured — see [`cache_dir`](Self::cache_dir)).
    ///
    /// # Errors
    ///
    /// [`BuildError::Param`] on invalid `ε/κ/ρ`; [`BuildError::Congest`]
    /// when a CONGEST simulation violates its contract;
    /// [`BuildError::Cache`] when a configured cache cannot store the
    /// fresh result.
    pub fn build(self) -> Result<BuildOutput, BuildError> {
        let construction = self.algorithm.construction();
        match &self.cache {
            Some(cache_cfg) => crate::cache::build_cached(
                construction.as_ref(),
                self.graph,
                &self.config,
                cache_cfg,
            ),
            None => construction.build(self.graph, &self.config),
        }
    }

    /// Like [`build`](Self::build), but hands the result straight to the
    /// serving side: a [`QueryEngine`] over the built structure, carrying
    /// the certified `(α, β)` pair. See the
    /// [module docs](self#query-serving).
    ///
    /// # Errors
    ///
    /// Exactly the [`build`](Self::build) errors.
    pub fn query_engine(self) -> Result<QueryEngine, BuildError> {
        Ok(self.build()?.into_query_engine())
    }
}

impl Emulator {
    /// Entry point of the fluent construction API:
    /// `Emulator::builder(&g).epsilon(0.5).kappa(4).build()?`.
    pub fn builder(g: &Graph) -> EmulatorBuilder<'_> {
        EmulatorBuilder::new(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usnae_graph::generators;

    #[test]
    fn builder_defaults_run_centralized() {
        let g = generators::gnp_connected(120, 0.06, 3).unwrap();
        let out = Emulator::builder(&g).build().unwrap();
        assert_eq!(out.algorithm, "centralized");
        assert!(out.certified.is_some());
        assert!(out.trace.is_none(), "tracing is opt-in");
        assert!(out.emulator.num_edges() as f64 <= out.size_bound.unwrap());
    }

    #[test]
    fn builder_traced_exposes_phases() {
        let g = generators::grid2d(9, 9).unwrap();
        let out = Emulator::builder(&g).kappa(3).traced(true).build().unwrap();
        let trace = out.trace.expect("traced build keeps its trace");
        assert!(!trace.phase_summaries().is_empty());
        assert!(trace.as_centralized().is_some());
    }

    #[test]
    fn builder_order_matters_on_star() {
        // The §2.1.1 example: hubs-first superclusters, hubs-last does not.
        let g = generators::star(9).unwrap();
        let first = Emulator::builder(&g)
            .kappa(2)
            .order(ProcessingOrder::ByDegreeDesc)
            .traced(true)
            .build()
            .unwrap();
        let last = Emulator::builder(&g)
            .kappa(2)
            .order(ProcessingOrder::ByDegreeAsc)
            .traced(true)
            .build()
            .unwrap();
        let sc = |o: &BuildOutput| o.trace.as_ref().unwrap().phase_summaries()[0].num_superclusters;
        assert_eq!(sc(&first), 1);
        assert_eq!(sc(&last), 0);
    }

    #[test]
    fn builder_threads_keep_output_identical() {
        let g = generators::gnp_connected(150, 0.05, 8).unwrap();
        let sequential = Emulator::builder(&g).kappa(4).build().unwrap();
        assert_eq!(sequential.stats.threads, 1);
        let parallel = Emulator::builder(&g).kappa(4).threads(4).build().unwrap();
        assert_eq!(parallel.stats.threads, 4);
        assert_eq!(
            sequential.emulator.provenance(),
            parallel.emulator.provenance()
        );
        assert!(!parallel.stats.phases.is_empty());
        assert!(parallel.stats.phase0().is_some());
    }

    #[test]
    fn builder_partition_keeps_output_identical_and_records_shards() {
        use usnae_graph::partition::PartitionPolicy;
        let g = generators::gnp_connected(150, 0.05, 12).unwrap();
        let shared = Emulator::builder(&g).kappa(4).build().unwrap();
        assert!(shared.stats.shards.is_empty(), "shared-array build");
        for policy in PartitionPolicy::all() {
            let sharded = Emulator::builder(&g)
                .kappa(4)
                .threads(2)
                .partition(policy, 4)
                .build()
                .unwrap();
            assert_eq!(
                shared.emulator.provenance(),
                sharded.emulator.provenance(),
                "{policy}"
            );
            assert_eq!(sharded.stats.shards.len(), 4, "{policy}");
            assert_eq!(
                sharded
                    .stats
                    .shards
                    .iter()
                    .map(|s| s.vertices)
                    .sum::<usize>(),
                g.num_vertices(),
                "{policy}: shards own every vertex exactly once"
            );
        }
    }

    #[test]
    fn builder_transport_keeps_output_identical_and_measures_messages() {
        use usnae_graph::partition::PartitionPolicy;
        let g = generators::gnp_connected(120, 0.05, 23).unwrap();
        let shared = Emulator::builder(&g).kappa(4).build().unwrap();
        assert_eq!(shared.stats.transport, TransportKind::Inproc);
        assert!(shared.stats.messages.is_none());
        let workers = Emulator::builder(&g)
            .kappa(4)
            .threads(2)
            .partition(PartitionPolicy::Range, 3)
            .transport(TransportKind::Channel)
            .build()
            .unwrap();
        assert_eq!(shared.emulator.provenance(), workers.emulator.provenance());
        assert_eq!(workers.stats.transport, TransportKind::Channel);
        let stats = workers.stats.messages.as_ref().expect("measured stats");
        assert!(stats.rounds > 0 && stats.messages > 0 && stats.bytes > 0);
    }

    #[test]
    fn builder_rejects_worker_transport_without_shards() {
        let g = generators::path(6).unwrap();
        assert!(matches!(
            Emulator::builder(&g)
                .transport(TransportKind::Channel)
                .build(),
            Err(BuildError::Param(_))
        ));
    }

    #[test]
    fn builder_rejects_zero_threads() {
        let g = generators::path(6).unwrap();
        for algo in Algorithm::all() {
            assert!(
                matches!(
                    Emulator::builder(&g).algorithm(algo).threads(0).build(),
                    Err(BuildError::Param(_))
                ),
                "{algo:?} must reject threads = 0"
            );
        }
    }

    #[test]
    fn builder_rejects_bad_parameters() {
        let g = generators::path(6).unwrap();
        assert!(matches!(
            Emulator::builder(&g).epsilon(2.0).build(),
            Err(BuildError::Param(_))
        ));
        assert!(matches!(
            Emulator::builder(&g).kappa(1).build(),
            Err(BuildError::Param(_))
        ));
        assert!(matches!(
            Emulator::builder(&g)
                .algorithm(Algorithm::FastCentralized)
                .rho(0.9)
                .build(),
            Err(BuildError::Param(_))
        ));
    }

    #[test]
    fn builder_runs_every_algorithm() {
        let g = generators::gnp_connected(70, 0.08, 5).unwrap();
        for algo in Algorithm::all() {
            let out = Emulator::builder(&g).algorithm(algo).build().unwrap();
            assert!(out.emulator.num_edges() > 0, "{algo:?}");
            assert_eq!(out.algorithm, algo.name());
            if algo.runs_on_congest() {
                let stats = out.congest.expect("CONGEST builds carry metrics");
                assert!(stats.metrics.rounds > 0, "{algo:?}");
                assert_eq!(stats.knowledge_violations, 0, "{algo:?}");
            }
        }
    }

    #[test]
    fn distributed_and_fast_agree_on_phase0_popularity() {
        let g = generators::gnp_connected(90, 0.08, 17).unwrap();
        let dist = Emulator::builder(&g)
            .algorithm(Algorithm::Distributed)
            .traced(true)
            .build()
            .unwrap();
        let fast = Emulator::builder(&g)
            .algorithm(Algorithm::FastCentralized)
            .traced(true)
            .build()
            .unwrap();
        let d = dist.trace.unwrap();
        let f = fast.trace.unwrap();
        let d0 = d.as_distributed().unwrap()[0].num_popular;
        let f0 = f.as_fast().unwrap().phases[0].num_popular;
        assert_eq!(d0, f0);
    }
}
