//! Fast centralized construction (§3.3): a centralized simulation of the
//! distributed algorithm.
//!
//! Instead of Algorithm 1's sequential center processing, each phase runs
//! the distributed pipeline's *logic* centrally:
//!
//! 1. detect popular clusters (≥ `deg_i` neighboring centers within `δ_i`);
//! 2. compute a ruling set for the popular centers — greedy min-id ball
//!    carving with separation `≥ 2δ_i + 1` and domination `≤ 2δ_i ≤ rul_i`
//!    (substitution S1: strictly better domination than the cited
//!    `(2/ρ)·δ_i`, so all downstream bounds hold);
//! 3. grow a BFS ruling forest to depth `rul_i + δ_i`; every tree becomes
//!    one supercluster (no hub splitting is needed centrally — §3.3);
//! 4. interconnect unclustered centers with *all* neighboring centers
//!    (§3.1.3).
//!
//! The size telescopes exactly as in eq. (18)–(19) because
//! `deg_{i+1} ≤ deg_i²` throughout the §3.1.1 schedule, and every
//! supercluster absorbs ≥ `deg_i + 1` clusters (Lemma 3.5 with one
//! supercluster per tree).

use crate::cluster::{Cluster, Partition};
use crate::emulator::{EdgeKind, EdgeProvenance, Emulator};
use crate::engine::Engine;
use crate::exec::{PhaseClock, PhaseTiming};
use crate::params::DistributedParams;
use usnae_graph::bfs::multi_source_bfs;
use usnae_graph::{AdjStorage, Dist, Graph, GraphCore, VertexId};

/// Per-phase statistics of a fast-centralized build.
#[derive(Debug, Clone, PartialEq)]
pub struct FastPhaseTrace {
    /// Phase index `i`.
    pub phase: usize,
    /// `|P_i|` at phase entry.
    pub num_clusters: usize,
    /// Distance threshold `δ_i`.
    pub delta: Dist,
    /// Real-valued popularity threshold `deg_i`.
    pub degree_threshold: f64,
    /// Popular clusters detected (`|W_i|`).
    pub num_popular: usize,
    /// Ruling set size (`|S_i|` of Task 2).
    pub ruling_set_size: usize,
    /// Superclusters formed.
    pub num_superclusters: usize,
    /// Clusters left unclustered (`|U_i|`).
    pub num_unclustered: usize,
    /// Interconnection edge insertions.
    pub interconnection_edges: usize,
    /// Superclustering edge insertions.
    pub superclustering_edges: usize,
}

/// Build record of the fast centralized construction.
#[derive(Debug, Clone)]
pub struct FastBuildTrace {
    /// One entry per phase `0..=ℓ`.
    pub phases: Vec<FastPhaseTrace>,
    /// `partitions[i]` is `P_i`; final entry is `P_{ℓ+1}` (empty).
    pub partitions: Vec<Partition>,
}

/// Builds a `(1+ε, β)`-emulator with ≤ `n^(1+1/κ)` edges in
/// `O(|E|·β·n^ρ)`-style time (Theorem 3.13).
#[deprecated(
    since = "0.2.0",
    note = "use usnae_core::api::EmulatorBuilder with Algorithm::FastCentralized instead"
)]
pub fn build_emulator_fast(g: &Graph, params: &DistributedParams) -> Emulator {
    build_fast(g, params).0
}

/// [`build_emulator_fast`] with a full [`FastBuildTrace`].
#[deprecated(
    since = "0.2.0",
    note = "use usnae_core::api::EmulatorBuilder with .traced(true) instead"
)]
pub fn build_emulator_fast_traced(
    g: &Graph,
    params: &DistributedParams,
) -> (Emulator, FastBuildTrace) {
    build_fast(g, params)
}

/// Crate-internal sequential entry point (tests): [`build_fast_exec`] with
/// one thread, timings dropped.
pub(crate) fn build_fast(g: &Graph, params: &DistributedParams) -> (Emulator, FastBuildTrace) {
    let (emulator, trace, _) = build_fast_exec(g, params, &Engine::inproc(g, 1));
    (emulator, trace)
}

/// Crate-internal entry point behind [`crate::api::EmulatorBuilder`]: runs
/// the §3.3 simulation end to end, sharding the Task-1 per-center scans
/// over `engine.threads()` and recording per-phase timings. The per-center
/// scans and the ruling-set ball carving run through the [`Engine`] — the
/// in-process fan-out or a worker pool, byte-identical either way.
pub(crate) fn build_fast_exec<S: AdjStorage>(
    g: &GraphCore<S>,
    params: &DistributedParams,
    engine: &Engine<'_, S>,
) -> (Emulator, FastBuildTrace, Vec<PhaseTiming>) {
    let n = g.num_vertices();
    let mut emulator = Emulator::new(n);
    let mut partition = Partition::singletons(n);
    let mut trace = FastBuildTrace {
        phases: Vec::with_capacity(params.ell() + 1),
        partitions: vec![partition.clone()],
    };
    let mut clock = PhaseClock::new();
    for i in 0..=params.ell() {
        let last = i == params.ell();
        let (next, phase_trace) = clock.measure(i, || {
            let (next, phase_trace, explorations) =
                run_phase(g, engine, &mut emulator, &partition, i, params, last);
            ((next, phase_trace), explorations)
        });
        trace.phases.push(phase_trace);
        trace.partitions.push(next.clone());
        partition = next;
    }
    debug_assert!(partition.is_empty(), "P_(ell+1) must be empty (eq. 17)");
    (emulator, trace, clock.into_phases())
}

/// Neighboring centers of every entry of `centers` within `delta`. Task 1
/// is status-free — one pure bounded BFS per center — so the whole scan
/// fans out through the engine; each list is sorted by vertex id, the
/// order the historical dense `Exploration` scan produced.
fn neighbor_lists<S: AdjStorage>(
    engine: &Engine<'_, S>,
    centers: &[VertexId],
    delta: Dist,
    is_center: &[bool],
) -> Vec<Vec<(VertexId, Dist)>> {
    engine
        .balls(centers, delta)
        .into_iter()
        .zip(centers)
        .map(|(ball, &rc)| {
            ball.into_iter()
                .filter(|&(v, _)| v != rc && is_center[v])
                .collect()
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn run_phase<S: AdjStorage>(
    g: &GraphCore<S>,
    engine: &Engine<'_, S>,
    emulator: &mut Emulator,
    partition: &Partition,
    i: usize,
    params: &DistributedParams,
    last: bool,
) -> (Partition, FastPhaseTrace, usize) {
    let n = g.num_vertices();
    let delta = params.delta(i);
    let cap = params.degree_cap(i, n);
    let center_of = partition.center_index();
    let centers = partition.centers();
    let mut is_center = vec![false; n];
    for &c in &centers {
        is_center[c] = true;
    }

    let mut phase_trace = FastPhaseTrace {
        phase: i,
        num_clusters: partition.len(),
        delta,
        degree_threshold: params.degree_threshold(i, n),
        num_popular: 0,
        ruling_set_size: 0,
        num_superclusters: 0,
        num_unclustered: 0,
        interconnection_edges: 0,
        superclustering_edges: 0,
    };

    // Task 1: popular-cluster detection — the sharded per-center scan,
    // reading local CSR shards (or a worker pool) when partitioned.
    let neighbor_lists = neighbor_lists(engine, &centers, delta, &is_center);
    let explorations = centers.len();
    let popular: Vec<VertexId> = centers
        .iter()
        .zip(&neighbor_lists)
        .filter(|(_, nbrs)| nbrs.len() >= cap)
        .map(|(&rc, _)| rc)
        .collect();
    phase_trace.num_popular = popular.len();
    debug_assert!(
        !last || popular.is_empty(),
        "no popular clusters in phase ell (eq. 17)"
    );

    let mut superclustered = vec![false; n]; // indexed by center vertex
    let mut next_clusters: Vec<Cluster> = Vec::new();

    if !last && !popular.is_empty() {
        // Task 2: ruling set for the popular centers, its ball carving
        // sharded over the same engine (byte-identical to sequential).
        let rulers = engine.ruling_set(&popular, delta);
        phase_trace.ruling_set_size = rulers.len();

        // Task 3: BFS ruling forest; one supercluster per tree (§3.3 — no
        // hub splitting is needed centrally).
        let forest = multi_source_bfs(g, &rulers, params.forest_depth(i));
        let mut members_of: std::collections::HashMap<VertexId, Vec<usize>> =
            rulers.iter().map(|&r| (r, vec![center_of[&r]])).collect();
        for &rc in &centers {
            let Some(root) = forest.root[rc] else {
                continue;
            };
            superclustered[rc] = true;
            if rc == root {
                continue;
            }
            emulator.add_edge(
                root,
                rc,
                forest.dist[rc],
                EdgeProvenance {
                    phase: i,
                    kind: EdgeKind::Superclustering,
                    charged_to: rc,
                },
            );
            phase_trace.superclustering_edges += 1;
            members_of
                .get_mut(&root)
                .expect("every root was seeded")
                .push(center_of[&rc]);
        }
        for &root in &rulers {
            let mut members = Vec::new();
            for &idx in &members_of[&root] {
                members.extend_from_slice(&partition.cluster(idx).members);
            }
            next_clusters.push(Cluster {
                center: root,
                members,
            });
        }
        phase_trace.num_superclusters = next_clusters.len();
    }

    // Interconnection (§3.1.3): every unclustered center connects to all its
    // neighboring centers (in the last phase, that is every center).
    for (&rc, nbrs) in centers.iter().zip(&neighbor_lists) {
        if superclustered[rc] {
            continue;
        }
        phase_trace.num_unclustered += 1;
        debug_assert!(
            nbrs.len() < cap,
            "U_i clusters are unpopular (Lemma 3.4): {} >= {cap}",
            nbrs.len()
        );
        for &(v, d) in nbrs {
            emulator.add_edge(
                rc,
                v,
                d,
                EdgeProvenance {
                    phase: i,
                    kind: EdgeKind::Interconnection,
                    charged_to: rc,
                },
            );
            phase_trace.interconnection_edges += 1;
        }
    }

    (
        Partition::from_clusters(next_clusters),
        phase_trace,
        explorations,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charging::ChargeLedger;
    use crate::verify::audit_stretch;
    use usnae_graph::distance::sample_pairs;
    use usnae_graph::generators;

    fn params(eps: f64, kappa: u32, rho: f64) -> DistributedParams {
        DistributedParams::new(eps, kappa, rho).unwrap()
    }

    #[test]
    fn size_bound_holds_across_families() {
        let graphs: Vec<(&str, usnae_graph::Graph)> = vec![
            ("gnp", generators::gnp_connected(300, 0.05, 1).unwrap()),
            ("grid", generators::grid2d(17, 18).unwrap()),
            ("ba", generators::barabasi_albert(300, 3, 2).unwrap()),
            ("ws", generators::watts_strogatz(300, 6, 0.1, 3).unwrap()),
        ];
        for (name, g) in &graphs {
            for &(kappa, rho) in &[(4u32, 0.5f64), (8, 0.4), (3, 0.5)] {
                let p = params(0.5, kappa, rho);
                let h = build_fast(g, &p).0;
                let bound = p.size_bound(g.num_vertices());
                assert!(
                    h.num_edges() as f64 <= bound + 1e-6,
                    "{name} kappa={kappa} rho={rho}: {} > {bound}",
                    h.num_edges()
                );
            }
        }
    }

    #[test]
    fn stretch_certified_on_samples() {
        let g = generators::gnp_connected(250, 0.03, 7).unwrap();
        let p = params(0.5, 4, 0.5);
        let (alpha, beta) = p.certified_stretch();
        let h = build_fast(&g, &p).0;
        let pairs = sample_pairs(&g, 500, 11);
        let report = audit_stretch(&g, h.graph(), alpha, beta, &pairs);
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn stretch_certified_on_high_diameter_graph() {
        let g = generators::grid2d(20, 10).unwrap();
        let p = params(0.9, 3, 0.5);
        let (alpha, beta) = p.certified_stretch();
        let h = build_fast(&g, &p).0;
        let pairs = sample_pairs(&g, 400, 13);
        let report = audit_stretch(&g, h.graph(), alpha, beta, &pairs);
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn charging_discipline_holds() {
        for seed in 0..4u64 {
            let g = generators::gnp_connected(220, 0.05, seed).unwrap();
            let p = params(0.5, 4, 0.5);
            let h = build_fast(&g, &p).0;
            let ledger = ChargeLedger::from_emulator(&h);
            ledger
                .verify(|phase| p.degree_cap(phase, 220))
                .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        }
    }

    #[test]
    fn ruling_set_separation_and_domination() {
        let g = generators::grid2d(15, 15).unwrap();
        let w: Vec<usize> = (0..225).step_by(3).collect();
        let delta = 2;
        let rulers = crate::sai::ruling_set(&g, &w, delta);
        assert!(!rulers.is_empty());
        // Separation: pairwise distance > 2δ.
        for (a, &u) in rulers.iter().enumerate() {
            let dist = usnae_graph::bfs::bfs(&g, u);
            for &v in rulers.iter().skip(a + 1) {
                assert!(dist[v].unwrap() > 2 * delta, "rulers {u},{v} too close");
            }
            // Domination: every w within 2δ of some ruler — checked below.
        }
        for &cand in &w {
            let dist = usnae_graph::bfs::bfs_bounded(&g, cand, 2 * delta);
            assert!(
                rulers.iter().any(|&r| dist[r].is_some()),
                "candidate {cand} undominated"
            );
        }
    }

    #[test]
    fn superclusters_absorb_enough_clusters() {
        // Lemma 3.5 with one supercluster per tree: ≥ deg_i + 1 clusters.
        let g = generators::gnp_connected(400, 0.08, 5).unwrap();
        let p = params(0.5, 4, 0.5);
        let (_, trace) = build_fast(&g, &p);
        for i in 0..trace.partitions.len() - 1 {
            let cap = p.degree_cap(i, 400);
            let prev_map = trace.partitions[i].vertex_to_cluster(400);
            for sc in trace.partitions[i + 1].clusters() {
                let absorbed: std::collections::HashSet<usize> = sc
                    .members
                    .iter()
                    .map(|&v| prev_map[v].expect("clustered"))
                    .collect();
                assert!(
                    absorbed.len() > cap,
                    "phase {i}: {} clusters",
                    absorbed.len()
                );
            }
        }
    }

    #[test]
    fn path_graph_is_reproduced() {
        let g = generators::path(12).unwrap();
        let p = params(0.5, 2, 0.5);
        let h = build_fast(&g, &p).0;
        // No popularity on a path at phase 0 (deg_0 ≈ 3.46 > 2 neighbors);
        // everything is interconnection of adjacent vertices.
        assert_eq!(h.num_edges(), 11);
    }

    #[test]
    fn ultra_sparse_distributed_params() {
        let g = generators::gnp_connected(1024, 0.01, 3).unwrap();
        let p = params(0.5, 100, 0.5);
        let h = build_fast(&g, &p).0;
        assert!(h.num_edges() as f64 <= p.size_bound(1024));
        assert!(h.num_edges() <= 1024 + 73);
    }

    #[test]
    fn parallel_build_is_byte_identical_to_sequential() {
        for seed in [2u64, 6] {
            let g = generators::gnp_connected(260, 0.05, seed).unwrap();
            let p = params(0.5, 4, 0.5);
            let (h1, t1, timings) = build_fast_exec(&g, &p, &Engine::inproc(&g, 1));
            assert_eq!(timings.len(), t1.phases.len());
            for threads in [2usize, 4, 8] {
                let (ht, tt, _) = build_fast_exec(&g, &p, &Engine::inproc(&g, threads));
                assert_eq!(
                    h1.provenance(),
                    ht.provenance(),
                    "seed {seed} threads {threads}: edge stream diverged"
                );
                assert_eq!(t1.phases, tt.phases, "seed {seed} threads {threads}");
            }
            // And the partitioned layout reproduces the same stream.
            for policy in usnae_graph::partition::PartitionPolicy::all() {
                let cfg = crate::api::BuildConfig {
                    partition: policy,
                    shards: 4,
                    threads: 2,
                    ..crate::api::BuildConfig::default()
                };
                let (hp, tp, _) = build_fast_exec(&g, &p, &Engine::new(&g, &cfg));
                assert_eq!(h1.provenance(), hp.provenance(), "seed {seed} {policy}");
                assert_eq!(t1.phases, tp.phases, "seed {seed} {policy}");
            }
        }
    }

    #[test]
    fn trace_is_internally_consistent() {
        let g = generators::gnp_connected(300, 0.06, 9).unwrap();
        let p = params(0.5, 4, 0.5);
        let (h, trace) = build_fast(&g, &p);
        let inserted: usize = trace
            .phases
            .iter()
            .map(|t| t.interconnection_edges + t.superclustering_edges)
            .sum();
        assert!(h.num_edges() <= inserted);
        assert_eq!(h.provenance().len(), inserted);
        for t in &trace.phases {
            assert!(t.num_superclusters <= t.ruling_set_size || t.ruling_set_size == 0);
            assert!(t.num_popular <= t.num_clusters);
        }
    }
}
