//! The centralized construction — Algorithm 1 of the paper (§2.1).
//!
//! Superclustering-and-interconnection over partial partitions `P_0 … P_ℓ`:
//! each phase sequentially considers cluster centers. A center `r_C` that
//! finds fewer than `deg_i` neighboring centers in `S_i ∪ N_i` (within
//! distance `δ_i` in `G`) is *unpopular*: it joins `U_i` and is charged with
//! the interconnection edges it just added (Fig. 1). A popular center forms
//! a supercluster absorbing all of `Γ(r_C)` (Fig. 2), and — the paper's key
//! innovation over EP01 — every center still in `S_i` at distance in
//! `(δ_i, 2δ_i]` moves into the *buffer set* `N_i` (Fig. 3): it may join a
//! future supercluster, and otherwise falls back to this one at phase end
//! (Fig. 4). Buffering is what removes EP01's ground partition and its
//! `n − 1` extra edges, letting the total size telescope to exactly
//! `n^(1+1/κ)` (Lemma 2.4).
//!
//! On the unweighted input the paper's "Dijkstra exploration to depth
//! `δ_i`" is a bounded BFS; we explore once to `2·δ_i` and reuse the
//! distances for both the `Γ(r_C)` computation and the buffer step.
//!
//! The explorations are the dominant cost and are pure functions of `G`,
//! so each phase prefetches them for a chunk of centers through
//! [`usnae_graph::par`] (sharded scoped threads). The center-processing
//! loop itself stays sequential and consumes the prefetched balls in
//! center order, so the build is **byte-identical for every thread
//! count** — a ball computed for a center that gets superclustered or
//! buffered before its turn is simply discarded, exactly as the lazy
//! sequential loop would never have computed it.

use crate::cluster::{Cluster, Partition};
use crate::emulator::{EdgeKind, EdgeProvenance, Emulator};
use crate::engine::Engine;
use crate::exec::{ChunkPolicy, PhaseClock, PhaseTiming};
use crate::params::CentralizedParams;
use usnae_graph::{AdjStorage, Dist, Graph, GraphCore, VertexId};

/// Order in which phase `i` pops centers from `S_i`.
///
/// The paper's bounds hold for *any* order, but the realized sets `U_i`
/// differ (its §2.1.1 star example); experiments F1–F3 ablate this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProcessingOrder {
    /// Ascending vertex id (deterministic default).
    #[default]
    ById,
    /// Descending vertex id.
    ByIdDesc,
    /// Descending `G`-degree, ties by id — hubs first.
    ByDegreeDesc,
    /// Ascending `G`-degree, ties by id — hubs last.
    ByDegreeAsc,
}

impl ProcessingOrder {
    fn arrange<S: AdjStorage>(&self, centers: &mut [VertexId], g: &GraphCore<S>) {
        match self {
            ProcessingOrder::ById => centers.sort_unstable(),
            ProcessingOrder::ByIdDesc => centers.sort_unstable_by(|a, b| b.cmp(a)),
            ProcessingOrder::ByDegreeDesc => {
                centers.sort_unstable_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v))
            }
            ProcessingOrder::ByDegreeAsc => centers.sort_unstable_by_key(|&v| (g.degree(v), v)),
        }
    }
}

/// Per-phase statistics of one build.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTrace {
    /// Phase index `i`.
    pub phase: usize,
    /// `|P_i|` at phase entry.
    pub num_clusters: usize,
    /// Distance threshold `δ_i`.
    pub delta: Dist,
    /// Real-valued popularity threshold `deg_i`.
    pub degree_threshold: f64,
    /// `|U_i|`: clusters left unclustered this phase.
    pub num_unclustered: usize,
    /// Superclusters formed (`|P_{i+1}|`).
    pub num_superclusters: usize,
    /// Centers that passed through the buffer set `N_i`.
    pub num_buffered: usize,
    /// Interconnection edge insertions.
    pub interconnection_edges: usize,
    /// Superclustering edge insertions.
    pub superclustering_edges: usize,
    /// Buffer-join edge insertions (Fig. 4).
    pub buffer_join_edges: usize,
}

/// Full build record: per-phase stats, the partitions `P_0 … P_{ℓ+1}`, and
/// the unclustered families `U_0 … U_ℓ` (whose union partitions `V`,
/// Lemma 2.8).
#[derive(Debug, Clone)]
pub struct BuildTrace {
    /// One entry per phase `0..=ℓ`.
    pub phases: Vec<PhaseTrace>,
    /// `partitions[i]` is `P_i`; the final entry is `P_{ℓ+1}` (empty).
    pub partitions: Vec<Partition>,
    /// `unclustered[i]` is `U_i`.
    pub unclustered: Vec<Vec<Cluster>>,
}

impl BuildTrace {
    /// Total edge insertions across phases (≥ distinct emulator edges).
    pub fn total_insertions(&self) -> usize {
        self.phases
            .iter()
            .map(|p| p.interconnection_edges + p.superclustering_edges + p.buffer_join_edges)
            .sum()
    }

    /// The union `U^(ℓ)` of all unclustered clusters, which must partition
    /// `V` (Lemma 2.8 plus `P_{ℓ+1} = ∅`).
    pub fn all_unclustered(&self) -> Vec<&Cluster> {
        self.unclustered.iter().flatten().collect()
    }
}

/// Builds a `(1+ε, β)`-emulator with at most `n^(1+1/κ)` edges
/// (Corollary 2.14), processing centers by ascending id.
#[deprecated(
    since = "0.2.0",
    note = "use usnae_core::api::EmulatorBuilder with Algorithm::Centralized instead"
)]
pub fn build_emulator(g: &Graph, params: &CentralizedParams) -> Emulator {
    build_centralized(g, params, ProcessingOrder::ById).0
}

/// [`build_emulator`] with an explicit processing order and a full
/// [`BuildTrace`].
#[deprecated(
    since = "0.2.0",
    note = "use usnae_core::api::EmulatorBuilder with .order(..).traced(true) instead"
)]
pub fn build_emulator_traced(
    g: &Graph,
    params: &CentralizedParams,
    order: ProcessingOrder,
) -> (Emulator, BuildTrace) {
    build_centralized(g, params, order)
}

/// Crate-internal sequential entry point (tests, oracle, hopset):
/// [`build_centralized_exec`] with one thread, timings dropped.
pub(crate) fn build_centralized(
    g: &Graph,
    params: &CentralizedParams,
    order: ProcessingOrder,
) -> (Emulator, BuildTrace) {
    let (emulator, trace, _) = build_centralized_exec(g, params, order, &Engine::inproc(g, 1));
    (emulator, trace)
}

/// Crate-internal entry point behind [`crate::api::EmulatorBuilder`]: runs
/// Algorithm 1 end to end, sharding the per-center explorations over
/// `engine.threads()` and recording per-phase wall-clock timings. The
/// explorations run through the [`Engine`] — the in-process fan-out over
/// the shared array or CSR shards, or a worker pool exchanging typed
/// frontier messages — byte-identical either way.
pub(crate) fn build_centralized_exec<S: AdjStorage>(
    g: &GraphCore<S>,
    params: &CentralizedParams,
    order: ProcessingOrder,
    engine: &Engine<'_, S>,
) -> (Emulator, BuildTrace, Vec<PhaseTiming>) {
    let n = g.num_vertices();
    let mut emulator = Emulator::new(n);
    let mut partition = Partition::singletons(n);
    let mut trace = BuildTrace {
        phases: Vec::with_capacity(params.ell() + 1),
        partitions: vec![partition.clone()],
        unclustered: Vec::with_capacity(params.ell() + 1),
    };
    let mut clock = PhaseClock::new();
    for i in 0..=params.ell() {
        let last = i == params.ell();
        let (next, phase_trace, u_i) = clock.measure(i, || {
            let (next, phase_trace, u_i, explorations) =
                run_phase(g, engine, &mut emulator, &partition, i, params, last, order);
            ((next, phase_trace, u_i), explorations)
        });
        trace.phases.push(phase_trace);
        trace.unclustered.push(u_i);
        trace.partitions.push(next.clone());
        partition = next;
    }
    debug_assert!(
        partition.is_empty(),
        "P_(ell+1) must be empty: no popular clusters in the last phase (eq. 1)"
    );
    (emulator, trace, clock.into_phases())
}

/// Status of a center during a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Not a center of `P_i`, or already removed.
    Out,
    /// In `S_i` (unprocessed).
    InS,
    /// In the buffer set `N_i`: remembers the supercluster that buffered it
    /// and the distance to that supercluster's center.
    InN { supercluster: usize, dist: Dist },
}

struct SuperclusterBuild {
    center: VertexId,
    member_clusters: Vec<usize>,
}

#[allow(clippy::too_many_arguments)]
fn run_phase<S: AdjStorage>(
    g: &GraphCore<S>,
    engine: &Engine<'_, S>,
    emulator: &mut Emulator,
    partition: &Partition,
    i: usize,
    params: &CentralizedParams,
    last: bool,
    order: ProcessingOrder,
) -> (Partition, PhaseTrace, Vec<Cluster>, usize) {
    let n = g.num_vertices();
    let delta = params.delta(i);
    let two_delta = delta.saturating_mul(2);
    let cap = params.degree_cap(i, n);
    let center_of = partition.center_index();
    let mut centers = partition.centers();

    let mut status = vec![Status::Out; n];
    for &c in &centers {
        status[c] = Status::InS;
    }
    order.arrange(&mut centers, g);

    let mut u_indices: Vec<usize> = Vec::new();
    let mut superclusters: Vec<SuperclusterBuild> = Vec::new();
    let mut phase_trace = PhaseTrace {
        phase: i,
        num_clusters: partition.len(),
        delta,
        degree_threshold: params.degree_threshold(i, n),
        num_unclustered: 0,
        num_superclusters: 0,
        num_buffered: 0,
        interconnection_edges: 0,
        superclustering_edges: 0,
        buffer_join_edges: 0,
    };

    // Explorations are prefetched per chunk: pure bounded BFS, sharded over
    // the thread pool; the sequential consumption below re-checks each
    // center's status, so a ball that became stale (its center was
    // superclustered or buffered mid-chunk) is discarded unused. The chunk
    // size adapts to the observed staleness (see [`ChunkPolicy`]); it never
    // affects the output, only the wasted work.
    let mut explorations = 0usize;
    let mut policy = ChunkPolicy::new(engine.threads());
    let mut pos = 0;
    while pos < centers.len() {
        let block = &centers[pos..(pos + policy.chunk()).min(centers.len())];
        pos += block.len();
        let todo: Vec<VertexId> = block
            .iter()
            .copied()
            .filter(|&c| status[c] == Status::InS)
            .collect();
        if todo.is_empty() {
            continue;
        }
        // One exploration to 2δ_i serves both Γ(r_C) and the buffer step;
        // the ball is sorted by vertex id — the same order the historical
        // dense distance-array scan visited vertices in. Reads go through
        // the engine: local CSR shards when the build is partitioned, a
        // worker pool when a transport is configured.
        let balls = engine.balls(&todo, two_delta);
        explorations += todo.len();
        let mut used = 0usize;
        for (&rc, ball) in todo.iter().zip(&balls) {
            if status[rc] != Status::InS {
                continue; // superclustered or buffered since being prefetched
            }
            used += 1;
            status[rc] = Status::Out; // removed from S_i (Algorithm 1 line 6)

            let mut gamma: Vec<(VertexId, Dist)> = Vec::new();
            for &(v, d) in ball {
                if v != rc && d <= delta && status[v] != Status::Out {
                    gamma.push((v, d));
                }
            }

            let popular = gamma.len() >= cap && !last;
            debug_assert!(
                !last || gamma.len() < cap,
                "phase ell must have no popular clusters (eq. 1): |Gamma| = {}, cap = {cap}",
                gamma.len()
            );
            if !popular {
                for &(v, d) in &gamma {
                    emulator.add_edge(
                        rc,
                        v,
                        d,
                        EdgeProvenance {
                            phase: i,
                            kind: EdgeKind::Interconnection,
                            charged_to: rc,
                        },
                    );
                    phase_trace.interconnection_edges += 1;
                }
                u_indices.push(center_of[&rc]);
            } else {
                let sc_idx = superclusters.len();
                let mut member_clusters = vec![center_of[&rc]];
                for &(v, d) in &gamma {
                    emulator.add_edge(
                        rc,
                        v,
                        d,
                        EdgeProvenance {
                            phase: i,
                            kind: EdgeKind::Superclustering,
                            charged_to: v,
                        },
                    );
                    phase_trace.superclustering_edges += 1;
                    status[v] = Status::Out; // removed from S_i or N_i
                    member_clusters.push(center_of[&v]);
                }
                // Buffer step (Algorithm 1 lines 18–20): S_i centers at distance
                // in (δ_i, 2δ_i] move to N_i, remembering this supercluster.
                for &(v, d) in ball {
                    if d > delta && status[v] == Status::InS {
                        status[v] = Status::InN {
                            supercluster: sc_idx,
                            dist: d,
                        };
                        phase_trace.num_buffered += 1;
                    }
                }
                superclusters.push(SuperclusterBuild {
                    center: rc,
                    member_clusters,
                });
            }
        }
        policy.record(todo.len(), used);
    }

    // Phase end (Algorithm 1 lines 22–26): leftover buffered centers join
    // the supercluster that buffered them.
    let mut buffered: Vec<(VertexId, usize, Dist)> = Vec::new();
    for (v, st) in status.iter().enumerate() {
        if let Status::InN { supercluster, dist } = *st {
            buffered.push((v, supercluster, dist));
        }
    }
    for (v, sc_idx, d) in buffered {
        let sc_center = superclusters[sc_idx].center;
        emulator.add_edge(
            sc_center,
            v,
            d,
            EdgeProvenance {
                phase: i,
                kind: EdgeKind::BufferJoin,
                charged_to: v,
            },
        );
        phase_trace.buffer_join_edges += 1;
        superclusters[sc_idx].member_clusters.push(center_of[&v]);
        status[v] = Status::Out;
    }

    phase_trace.num_unclustered = u_indices.len();
    phase_trace.num_superclusters = superclusters.len();

    let next_clusters: Vec<Cluster> = superclusters
        .into_iter()
        .map(|sc| {
            let mut members = Vec::new();
            for idx in sc.member_clusters {
                members.extend_from_slice(&partition.cluster(idx).members);
            }
            Cluster {
                center: sc.center,
                members,
            }
        })
        .collect();
    let u_clusters: Vec<Cluster> = u_indices
        .into_iter()
        .map(|idx| partition.cluster(idx).clone())
        .collect();

    (
        Partition::from_clusters(next_clusters),
        phase_trace,
        u_clusters,
        explorations,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charging::ChargeLedger;
    use usnae_graph::generators;

    fn params(eps: f64, kappa: u32) -> CentralizedParams {
        CentralizedParams::new(eps, kappa).unwrap()
    }

    #[test]
    fn path_graph_yields_graph_itself() {
        // On a sparse path nobody is popular in phase 0 (deg_0 ≥ 3 > 2
        // neighbors), so H contains exactly G's edges with weight 1.
        let g = generators::path(10).unwrap();
        let p = params(0.5, 2);
        let (h, trace) = build_centralized(&g, &p, ProcessingOrder::ById);
        assert_eq!(h.num_edges(), 9);
        assert!(h.graph().edges().all(|e| e.weight == 1));
        assert_eq!(trace.phases[0].num_superclusters, 0);
        assert_eq!(trace.phases[0].num_unclustered, 10);
    }

    #[test]
    fn star_order_dependence_matches_paper_example() {
        // §2.1.1: processing the hub first makes it popular; processing it
        // last leaves it with no S∪N neighbors, hence unpopular.
        let g = generators::star(9).unwrap();
        let p = params(0.5, 2); // deg_0 = 3, cap 3

        let (h_first, t_first) = build_centralized(&g, &p, ProcessingOrder::ByDegreeDesc);
        assert_eq!(t_first.phases[0].num_superclusters, 1);
        assert_eq!(t_first.phases[0].superclustering_edges, 8);
        assert_eq!(h_first.num_edges(), 8);

        let (h_last, t_last) = build_centralized(&g, &p, ProcessingOrder::ByDegreeAsc);
        assert_eq!(t_last.phases[0].num_superclusters, 0);
        assert_eq!(t_last.phases[0].interconnection_edges, 8);
        assert_eq!(h_last.num_edges(), 8);
    }

    #[test]
    fn buffer_join_fires_on_pendant_vertex() {
        // Hub 0 with leaves 1..=5 plus a pendant 6 hanging off leaf 1: when
        // the hub superclusters its leaves, 6 (at distance 2 = 2δ_0) is
        // buffered into N_0 and falls back via a buffer-join edge.
        let mut edges: Vec<(usize, usize)> = (1..=5).map(|v| (0, v)).collect();
        edges.push((1, 6));
        let g = usnae_graph::Graph::from_edges(7, &edges).unwrap();
        let p = params(0.5, 2); // deg_0 = 7^{1/2} ≈ 2.65, cap 3
        let (h, trace) = build_centralized(&g, &p, ProcessingOrder::ById);
        assert_eq!(trace.phases[0].num_superclusters, 1);
        assert_eq!(trace.phases[0].num_buffered, 1);
        assert_eq!(trace.phases[0].buffer_join_edges, 1);
        assert_eq!(h.graph().weight(0, 6), Some(2));
        // The supercluster swallowed everything: one cluster in P_1.
        assert_eq!(trace.partitions[1].len(), 1);
        assert_eq!(trace.partitions[1].cluster(0).len(), 7);
    }

    #[test]
    fn buffered_center_prefers_later_supercluster() {
        // Two hubs far enough apart to supercluster independently, with a
        // middle vertex buffered by the first but captured by the second's
        // Γ; it must join the second supercluster, not buffer-join the first.
        //
        //   leaves—0 …path… m …path… 1—leaves
        //
        // Geometry is fiddly; rather than hand-build, check the invariant on
        // a family of dumbbells: every vertex ends up in exactly one place.
        for bridge in [2usize, 3, 4, 5, 6] {
            let g = generators::dumbbell(5, bridge).unwrap();
            let p = params(0.5, 2);
            let (_, trace) = build_centralized(&g, &p, ProcessingOrder::ById);
            let n = g.num_vertices();
            // Lemma 2.8: U^(ℓ) ∪ P_{ℓ+1} partitions V, and P_{ℓ+1} = ∅.
            let mut covered = vec![false; n];
            for c in trace.all_unclustered() {
                for &v in &c.members {
                    assert!(!covered[v], "vertex {v} covered twice (bridge {bridge})");
                    covered[v] = true;
                }
            }
            assert!(
                covered.iter().all(|&b| b),
                "uncovered vertex (bridge {bridge})"
            );
        }
    }

    #[test]
    fn size_bound_holds_across_families_and_orders() {
        let graphs: Vec<(&str, usnae_graph::Graph)> = vec![
            ("gnp", generators::gnp_connected(300, 0.05, 1).unwrap()),
            ("grid", generators::grid2d(18, 17).unwrap()),
            ("star", generators::star(300).unwrap()),
            ("ba", generators::barabasi_albert(300, 3, 2).unwrap()),
            ("caveman", generators::caveman(30, 10).unwrap()),
        ];
        for (name, g) in &graphs {
            for kappa in [2u32, 3, 4, 8] {
                for order in [
                    ProcessingOrder::ById,
                    ProcessingOrder::ByIdDesc,
                    ProcessingOrder::ByDegreeDesc,
                    ProcessingOrder::ByDegreeAsc,
                ] {
                    let p = params(0.5, kappa);
                    let (h, _) = build_centralized(g, &p, order);
                    let bound = p.size_bound(g.num_vertices());
                    assert!(
                        h.num_edges() as f64 <= bound + 1e-6,
                        "{name} kappa={kappa} order={order:?}: {} > {bound}",
                        h.num_edges()
                    );
                }
            }
        }
    }

    #[test]
    fn charging_discipline_verified_on_random_graphs() {
        for seed in 0..5u64 {
            let g = generators::gnp_connected(200, 0.04, seed).unwrap();
            let p = params(0.5, 4);
            let h = build_centralized(&g, &p, ProcessingOrder::ById).0;
            let ledger = ChargeLedger::from_emulator(&h);
            ledger
                .verify(|phase| p.degree_cap(phase, 200))
                .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        }
    }

    #[test]
    fn emulator_distances_never_shorter_than_graph() {
        // d_G ≤ d_H: emulator edge weights are exact G-distances, so no pair
        // can get closer in H.
        let g = generators::gnp_connected(120, 0.06, 9).unwrap();
        let p = params(0.5, 3);
        let h = build_centralized(&g, &p, ProcessingOrder::ById).0;
        let apsp = usnae_graph::distance::Apsp::new(&g);
        for (u, v) in usnae_graph::distance::sample_pairs(&g, 150, 4) {
            if let Some(dh) = h.distance(u, v) {
                assert!(dh >= apsp.distance(u, v).unwrap(), "pair ({u},{v})");
            }
        }
    }

    #[test]
    fn stretch_certified_on_small_graphs() {
        // Exhaustive stretch check against the certified (α, β).
        let configs: Vec<(usnae_graph::Graph, u32)> = vec![
            (generators::gnp_connected(80, 0.08, 3).unwrap(), 2),
            (generators::grid2d(9, 9).unwrap(), 3),
            (generators::cycle(60).unwrap(), 4),
            (generators::hypercube(6).unwrap(), 3),
        ];
        for (g, kappa) in configs {
            let p = params(0.5, kappa);
            let (alpha, beta) = p.certified_stretch();
            let h = build_centralized(&g, &p, ProcessingOrder::ById).0;
            let apsp = usnae_graph::distance::Apsp::new(&g);
            let n = g.num_vertices();
            for u in 0..n {
                let dh = h.distances_from(u);
                for v in (u + 1)..n {
                    if let Some(dg) = apsp.distance(u, v) {
                        let dh = dh[v].unwrap_or_else(|| {
                            panic!("pair ({u},{v}) disconnected in H (kappa={kappa})")
                        });
                        assert!(
                            dh as f64 <= alpha * dg as f64 + beta + 1e-9,
                            "kappa={kappa} pair ({u},{v}): d_H={dh}, d_G={dg}, α={alpha}, β={beta}"
                        );
                        assert!(dh >= dg);
                    }
                }
            }
        }
    }

    #[test]
    fn partitions_sizes_obey_lemma_2_3() {
        // |P_i| ≤ n^(1 − (2^i − 1)/κ).
        let g = generators::gnp_connected(400, 0.08, 11).unwrap();
        let p = params(0.5, 4);
        let (_, trace) = build_centralized(&g, &p, ProcessingOrder::ById);
        let n = g.num_vertices() as f64;
        for (i, part) in trace.partitions.iter().enumerate().take(p.ell() + 1) {
            let bound = n.powf(1.0 - (2f64.powi(i as i32) - 1.0) / p.kappa() as f64);
            assert!(
                part.len() as f64 <= bound + 1e-6,
                "phase {i}: |P_i| = {} > {bound}",
                part.len()
            );
        }
    }

    #[test]
    fn superclusters_have_at_least_cap_plus_one_members() {
        // Lemma 2.1: every supercluster absorbs ≥ deg_i + 1 clusters of P_i.
        let g = generators::gnp_connected(300, 0.1, 13).unwrap();
        let p = params(0.5, 3);
        let (_, trace) = build_centralized(&g, &p, ProcessingOrder::ById);
        for i in 0..trace.partitions.len() - 1 {
            let cap = p.degree_cap(i, 300);
            let prev = &trace.partitions[i];
            let prev_map = prev.vertex_to_cluster(300);
            for sc in trace.partitions[i + 1].clusters() {
                let absorbed: std::collections::HashSet<usize> = sc
                    .members
                    .iter()
                    .map(|&v| prev_map[v].expect("member was clustered"))
                    .collect();
                assert!(
                    absorbed.len() > cap,
                    "phase {i}: supercluster absorbed only {} clusters (cap {cap})",
                    absorbed.len()
                );
            }
        }
    }

    #[test]
    fn complete_graph_collapses_in_one_phase() {
        let g = generators::complete_graph(50).unwrap();
        let p = params(0.5, 2);
        let (h, trace) = build_centralized(&g, &p, ProcessingOrder::ById);
        // First processed vertex superclusters everything.
        assert_eq!(trace.phases[0].num_superclusters, 1);
        assert_eq!(trace.partitions[1].len(), 1);
        assert_eq!(h.num_edges(), 49);
    }

    #[test]
    fn empty_like_graphs_handled() {
        // Isolated vertices: everyone unpopular with empty Γ; H empty.
        let g = usnae_graph::Graph::empty(5);
        let p = params(0.5, 2);
        let (h, trace) = build_centralized(&g, &p, ProcessingOrder::ById);
        assert_eq!(h.num_edges(), 0);
        assert_eq!(trace.phases[0].num_unclustered, 5);
    }

    #[test]
    fn single_vertex_graph() {
        let g = usnae_graph::Graph::empty(1);
        let p = params(0.5, 2);
        let h = build_centralized(&g, &p, ProcessingOrder::ById).0;
        assert_eq!(h.num_edges(), 0);
    }

    #[test]
    fn parallel_build_is_byte_identical_to_sequential() {
        for seed in [3u64, 8] {
            let g = generators::gnp_connected(250, 0.05, seed).unwrap();
            let p = params(0.5, 4);
            for order in [ProcessingOrder::ById, ProcessingOrder::ByDegreeDesc] {
                let (h1, t1, timings) =
                    build_centralized_exec(&g, &p, order, &Engine::inproc(&g, 1));
                assert_eq!(timings.len(), t1.phases.len());
                for threads in [2usize, 4, 8] {
                    let (ht, tt, _) =
                        build_centralized_exec(&g, &p, order, &Engine::inproc(&g, threads));
                    assert_eq!(
                        h1.provenance(),
                        ht.provenance(),
                        "seed {seed} threads {threads}: edge stream diverged"
                    );
                    assert_eq!(t1.phases, tt.phases, "seed {seed} threads {threads}");
                }
            }
        }
    }

    #[test]
    fn partitioned_build_is_byte_identical_to_shared_array() {
        use usnae_graph::partition::PartitionPolicy;
        let g = generators::gnp_connected(220, 0.05, 6).unwrap();
        let p = params(0.5, 4);
        let order = ProcessingOrder::ById;
        let (h1, t1, _) = build_centralized_exec(&g, &p, order, &Engine::inproc(&g, 1));
        for policy in PartitionPolicy::all() {
            for shards in [1usize, 2, 4, 7] {
                for threads in [1usize, 4] {
                    let cfg = crate::api::BuildConfig {
                        partition: policy,
                        shards,
                        threads,
                        ..crate::api::BuildConfig::default()
                    };
                    let engine = Engine::new(&g, &cfg);
                    let (ht, tt, _) = build_centralized_exec(&g, &p, order, &engine);
                    assert_eq!(
                        h1.provenance(),
                        ht.provenance(),
                        "policy {policy} shards {shards} threads {threads}"
                    );
                    assert_eq!(t1.phases, tt.phases, "policy {policy} shards {shards}");
                }
            }
        }
    }

    #[test]
    fn ultra_sparse_kappa_gives_near_linear_size() {
        // κ = log²n: |H| ≤ n^(1+1/κ) = n + o(n) (Corollary 2.15).
        let g = generators::gnp_connected(1024, 0.01, 17).unwrap();
        let kappa = 100; // log₂²(1024) = 100
        let p = params(0.5, kappa);
        let h = build_centralized(&g, &p, ProcessingOrder::ById).0;
        assert!(h.num_edges() as f64 <= p.size_bound(1024));
        assert!(h.num_edges() <= 1024 + 73); // n^(1+1/100) − n ≈ 72.6
    }
}
