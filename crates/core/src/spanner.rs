//! Near-additive **spanners** — the §4 construction.
//!
//! Same SAI skeleton as §3, with two changes:
//!
//! * instead of a weighted emulator edge `(u, v, d)`, the construction adds
//!   the *whole shortest `u–v` path of `G`* to the output, so the result is
//!   a subgraph of `G`;
//! * the degree sequence is EN17a's (`γ = max(2, log log κ)` exponential
//!   stage, an `n^(ρ/2)` transition phase, then `n^ρ`), chosen so the
//!   per-phase interconnection contributions `|P_i|·deg_i·δ_i` decay
//!   geometrically and the total is `O(n^(1+1/κ))` (eq. 39) — the paper's
//!   improvement over EM19's `O(β·n^(1+1/κ))`.
//!
//! Superclustering becomes *simpler* than for emulators: the BFS ruling
//! forest `F_i` is itself a subgraph, so its edges go straight into the
//! spanner (≤ `n` per phase, eq. 31) and no hub-vertex splitting is needed —
//! one supercluster per tree.

use crate::cluster::{Cluster, Partition};
use crate::emulator::{EdgeKind, EdgeProvenance, Emulator};
use crate::engine::Engine;
use crate::exec::{PhaseClock, PhaseTiming};
use crate::params::SpannerParams;
use usnae_graph::bfs::multi_source_bfs;
use usnae_graph::{AdjStorage, Dist, Graph, GraphCore, VertexId};

use crate::sai::Exploration;

/// Per-phase statistics of a spanner build.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannerPhaseTrace {
    /// Phase index `i`.
    pub phase: usize,
    /// `|P_i|` at phase entry.
    pub num_clusters: usize,
    /// Distance threshold `δ_i`.
    pub delta: Dist,
    /// Real-valued popularity threshold `deg_i`.
    pub degree_threshold: f64,
    /// Popular clusters detected.
    pub num_popular: usize,
    /// Ruling set size.
    pub ruling_set_size: usize,
    /// Superclusters formed.
    pub num_superclusters: usize,
    /// Clusters left unclustered.
    pub num_unclustered: usize,
    /// Spanner edge insertions from forest paths (≤ n by eq. 31).
    pub superclustering_edges: usize,
    /// Spanner edge insertions from interconnection paths.
    pub interconnection_edges: usize,
}

/// Build record of the §4 spanner.
#[derive(Debug, Clone)]
pub struct SpannerTrace {
    /// One entry per phase `0..=ℓ'`.
    pub phases: Vec<SpannerPhaseTrace>,
    /// `partitions[i]` is `P_i`; the final entry is `P_{ℓ'+1}` (empty).
    pub partitions: Vec<Partition>,
}

/// Builds a `(1+ε, β)`-spanner with `O(n^(1+1/κ))` edges (Corollary 4.4).
///
/// The result is a subgraph of `G`: every edge has weight 1 and exists in
/// `G` ([`crate::verify::is_subgraph_spanner`] certifies this).
#[deprecated(
    since = "0.2.0",
    note = "use usnae_core::api::EmulatorBuilder with Algorithm::Spanner instead"
)]
pub fn build_spanner(g: &Graph, params: &SpannerParams) -> Emulator {
    build_spanner_impl(g, params).0
}

/// [`build_spanner`] with a full [`SpannerTrace`].
#[deprecated(
    since = "0.2.0",
    note = "use usnae_core::api::EmulatorBuilder with .traced(true) instead"
)]
pub fn build_spanner_traced(g: &Graph, params: &SpannerParams) -> (Emulator, SpannerTrace) {
    build_spanner_impl(g, params)
}

/// Crate-internal sequential entry point (tests, shims):
/// [`build_spanner_exec`] with one thread, timings dropped.
pub(crate) fn build_spanner_impl(g: &Graph, params: &SpannerParams) -> (Emulator, SpannerTrace) {
    let (spanner, trace, _) = build_spanner_exec(g, params, &Engine::inproc(g, 1));
    (spanner, trace)
}

/// Crate-internal entry point behind [`crate::api::EmulatorBuilder`]: runs
/// the §4 construction end to end, sharding the Task-1 explorations over
/// `engine.threads()` and recording per-phase timings.
pub(crate) fn build_spanner_exec<S: AdjStorage>(
    g: &GraphCore<S>,
    params: &SpannerParams,
    engine: &Engine<'_, S>,
) -> (Emulator, SpannerTrace, Vec<PhaseTiming>) {
    let n = g.num_vertices();
    let mut spanner = Emulator::new(n);
    let mut partition = Partition::singletons(n);
    let mut trace = SpannerTrace {
        phases: Vec::with_capacity(params.ell() + 1),
        partitions: vec![partition.clone()],
    };
    let mut clock = PhaseClock::new();
    for i in 0..=params.ell() {
        let last = i == params.ell();
        let (next, phase_trace) = clock.measure(i, || {
            let (next, phase_trace, explorations) =
                run_phase(g, engine, &mut spanner, &partition, i, params, last);
            ((next, phase_trace), explorations)
        });
        trace.phases.push(phase_trace);
        trace.partitions.push(next.clone());
        partition = next;
    }
    debug_assert!(partition.is_empty(), "P_(ell'+1) must be empty (eq. 37)");
    (spanner, trace, clock.into_phases())
}

/// Adds every edge of `path` to the spanner with unit weight; returns the
/// number of *new* edges created.
fn add_path(
    spanner: &mut Emulator,
    path: &[VertexId],
    phase: usize,
    kind: EdgeKind,
    charged_to: VertexId,
) -> usize {
    let mut created = 0;
    for w in path.windows(2) {
        if spanner.add_edge(
            w[0],
            w[1],
            1,
            EdgeProvenance {
                phase,
                kind,
                charged_to,
            },
        ) {
            created += 1;
        }
    }
    created
}

#[allow(clippy::too_many_arguments)]
fn run_phase<S: AdjStorage>(
    g: &GraphCore<S>,
    engine: &Engine<'_, S>,
    spanner: &mut Emulator,
    partition: &Partition,
    i: usize,
    params: &SpannerParams,
    last: bool,
) -> (Partition, SpannerPhaseTrace, usize) {
    let n = g.num_vertices();
    let delta = params.delta(i);
    let cap = params.degree_cap(i, n);
    let center_of = partition.center_index();
    let centers = partition.centers();
    let mut is_center = vec![false; n];
    for &c in &centers {
        is_center[c] = true;
    }

    let mut phase_trace = SpannerPhaseTrace {
        phase: i,
        num_clusters: partition.len(),
        delta,
        degree_threshold: params.degree_threshold(i, n),
        num_popular: 0,
        ruling_set_size: 0,
        num_superclusters: 0,
        num_unclustered: 0,
        superclustering_edges: 0,
        interconnection_edges: 0,
    };

    // Task 1: popular detection, keeping the explorations for path
    // recovery. Each exploration is a pure function of G, so the whole
    // scan fans out through the engine (thread pool or worker pool);
    // results merge in center order, keeping the build deterministic.
    let explorations: Vec<Exploration> = engine.explorations(&centers, delta);
    let neighbor_lists: Vec<Vec<(VertexId, Dist)>> = explorations
        .iter()
        .map(|e| e.centers_found(&is_center))
        .collect();
    let num_explorations = centers.len();
    let popular: Vec<VertexId> = centers
        .iter()
        .zip(&neighbor_lists)
        .filter(|(_, nbrs)| nbrs.len() >= cap)
        .map(|(&rc, _)| rc)
        .collect();
    phase_trace.num_popular = popular.len();
    debug_assert!(
        !last || popular.is_empty(),
        "no popular clusters in the last phase (eq. 37)"
    );

    let mut superclustered = vec![false; n];
    let mut next_clusters: Vec<Cluster> = Vec::new();

    if !last && !popular.is_empty() {
        let rulers = engine.ruling_set(&popular, delta);
        phase_trace.ruling_set_size = rulers.len();
        let forest = multi_source_bfs(g, &rulers, params.forest_depth(i));
        let mut members_of: std::collections::HashMap<VertexId, Vec<usize>> =
            rulers.iter().map(|&r| (r, vec![center_of[&r]])).collect();
        for &rc in &centers {
            let Some(root) = forest.root[rc] else {
                continue;
            };
            superclustered[rc] = true;
            if rc == root {
                continue;
            }
            // The forest is a subgraph of G: add the tree path root←rc.
            let path = forest
                .path_to_root(rc)
                .expect("rooted vertices have tree paths");
            phase_trace.superclustering_edges +=
                add_path(spanner, &path, i, EdgeKind::Superclustering, rc);
            members_of
                .get_mut(&root)
                .expect("roots seeded")
                .push(center_of[&rc]);
        }
        for &root in &rulers {
            let mut members = Vec::new();
            for &idx in &members_of[&root] {
                members.extend_from_slice(&partition.cluster(idx).members);
            }
            next_clusters.push(Cluster {
                center: root,
                members,
            });
        }
        phase_trace.num_superclusters = next_clusters.len();
    }

    // Interconnection: unclustered centers add shortest paths to *all*
    // neighboring centers (§3.1.3 semantics, subgraph edition).
    for ((&rc, nbrs), expl) in centers.iter().zip(&neighbor_lists).zip(&explorations) {
        if superclustered[rc] {
            continue;
        }
        phase_trace.num_unclustered += 1;
        debug_assert!(nbrs.len() < cap, "U_i clusters are unpopular (Lemma 3.4)");
        for &(v, _) in nbrs {
            let path = expl
                .path_to(v)
                .expect("neighbor was reached by this exploration");
            phase_trace.interconnection_edges +=
                add_path(spanner, &path, i, EdgeKind::Interconnection, rc);
        }
    }

    (
        Partition::from_clusters(next_clusters),
        phase_trace,
        num_explorations,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{audit_stretch, is_subgraph_spanner};
    use usnae_graph::distance::sample_pairs;
    use usnae_graph::generators;

    fn params(eps: f64, kappa: u32, rho: f64) -> SpannerParams {
        SpannerParams::new(eps, kappa, rho).unwrap()
    }

    #[test]
    fn spanner_is_subgraph_across_families() {
        let graphs: Vec<usnae_graph::Graph> = vec![
            generators::gnp_connected(250, 0.06, 1).unwrap(),
            generators::grid2d(15, 15).unwrap(),
            generators::barabasi_albert(250, 4, 2).unwrap(),
            generators::caveman(25, 10).unwrap(),
        ];
        for g in &graphs {
            let p = params(0.5, 4, 0.5);
            let s = build_spanner_impl(g, &p).0;
            assert!(is_subgraph_spanner(g, s.graph()));
            assert!(s.num_edges() <= g.num_edges());
        }
    }

    #[test]
    fn stretch_certified_on_samples() {
        let g = generators::gnp_connected(250, 0.04, 7).unwrap();
        let p = params(0.5, 4, 0.5);
        let (alpha, beta) = p.certified_stretch();
        let s = build_spanner_impl(&g, &p).0;
        let pairs = sample_pairs(&g, 400, 5);
        let report = audit_stretch(&g, s.graph(), alpha, beta, &pairs);
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn stretch_certified_on_grid() {
        let g = generators::grid2d(16, 12).unwrap();
        let p = params(0.9, 3, 0.5);
        let (alpha, beta) = p.certified_stretch();
        let s = build_spanner_impl(&g, &p).0;
        let pairs = sample_pairs(&g, 300, 9);
        let report = audit_stretch(&g, s.graph(), alpha, beta, &pairs);
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn dense_graph_is_sparsified() {
        // On a dense G(n, p) the spanner must drop most edges.
        let g = generators::gnp_connected(300, 0.2, 11).unwrap();
        let p = params(0.5, 8, 0.5);
        let s = build_spanner_impl(&g, &p).0;
        assert!(
            (s.num_edges() as f64) < 0.5 * g.num_edges() as f64,
            "{} of {}",
            s.num_edges(),
            g.num_edges()
        );
    }

    #[test]
    fn forest_edges_bounded_by_n_per_phase() {
        // eq. 31: superclustering contributes ≤ n edges per phase.
        let g = generators::gnp_connected(400, 0.08, 13).unwrap();
        let p = params(0.5, 4, 0.5);
        let (_, trace) = build_spanner_impl(&g, &p);
        for t in &trace.phases {
            assert!(
                t.superclustering_edges <= 400,
                "phase {}: {}",
                t.phase,
                t.superclustering_edges
            );
        }
    }

    #[test]
    fn path_graph_spanner_is_path() {
        let g = generators::path(15).unwrap();
        let p = params(0.5, 2, 0.5);
        let s = build_spanner_impl(&g, &p).0;
        assert_eq!(s.num_edges(), 14); // the path itself
    }

    #[test]
    fn sparser_than_trivial_bound() {
        // Size stays within a small multiple of n^(1+1/κ) (the O(·) of
        // eq. 39 hides a modest constant).
        let g = generators::gnp_connected(400, 0.1, 17).unwrap();
        let p = params(0.5, 4, 0.5);
        let s = build_spanner_impl(&g, &p).0;
        assert!(
            (s.num_edges() as f64) <= 4.0 * p.size_bound(400),
            "{} vs bound {}",
            s.num_edges(),
            p.size_bound(400)
        );
    }

    #[test]
    fn trace_partition_laminarity() {
        let g = generators::gnp_connected(300, 0.07, 19).unwrap();
        let p = params(0.5, 4, 0.5);
        let (_, trace) = build_spanner_impl(&g, &p);
        // Each P_{i+1} cluster is a union of P_i clusters (Lemma 2.9).
        for i in 0..trace.partitions.len() - 1 {
            let prev = trace.partitions[i].vertex_to_cluster(300);
            for sc in trace.partitions[i + 1].clusters() {
                let mut prev_ids: Vec<usize> = sc
                    .members
                    .iter()
                    .map(|&v| prev[v].expect("member clustered"))
                    .collect();
                prev_ids.sort_unstable();
                prev_ids.dedup();
                // Every vertex of each absorbed P_i cluster is in sc.
                for id in prev_ids {
                    for &v in &trace.partitions[i].cluster(id).members {
                        assert!(sc.members.contains(&v));
                    }
                }
            }
        }
    }
}
