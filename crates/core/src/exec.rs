//! Execution policy and timing records shared by every construction.
//!
//! [`BuildConfig::threads`](crate::api::BuildConfig) flows through the
//! constructions as a plain `usize`; this module holds the bookkeeping
//! that rides along: per-phase wall-clock timings (with exploration
//! counts, so benchmarks can report phase-0 parallel speedups) and the
//! chunk-size policy for the prefetching sharded phases.

use std::time::{Duration, Instant};

pub use usnae_graph::partition::ShardTiming;
pub use usnae_workers::socket::WORKERS_ADDR_ENV;
pub use usnae_workers::{MessageStats, PairStats, TransportKind};

/// Wall-clock record of one construction phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseTiming {
    /// Phase index `i`.
    pub phase: usize,
    /// Wall-clock time of the whole phase.
    pub duration: Duration,
    /// Bounded-BFS explorations launched this phase (the sharded work).
    pub explorations: usize,
}

/// How a build's output was obtained relative to the construction cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheStatus {
    /// No cache was consulted (the default for direct builds).
    #[default]
    Uncached,
    /// The cache was consulted, had no valid entry, and the build ran the
    /// construction (storing the result when the cache is writable).
    Miss,
    /// The output was loaded from a verified snapshot; no phase work ran.
    Hit,
}

impl std::fmt::Display for CacheStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CacheStatus::Uncached => "off",
            CacheStatus::Miss => "miss",
            CacheStatus::Hit => "hit",
        })
    }
}

/// Execution statistics of one build: thread count, total wall clock, and
/// per-phase timings where the construction records them — the sharded
/// centralized/fast/spanner family *and* the CONGEST simulations (whose
/// `explorations` count the detection sources simulated per phase), so
/// `usnae run --report` is uniform across the registry; only the baseline
/// adapters report the total alone.
///
/// A cache hit is visible here: `cache == CacheStatus::Hit` with `phases`
/// empty (no phase work ran — `total` is just the snapshot load time).
///
/// A partitioned build (`BuildConfig::shards >= 1` on a construction that
/// shards its explorations) additionally records one [`ShardTiming`] per
/// CSR shard: owned vertices, local/cut edge counts, and the wall clock of
/// that shard's layout construction.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BuildStats {
    /// Thread count the build ran with (`BuildConfig::threads`).
    pub threads: usize,
    /// Total build wall clock.
    pub total: Duration,
    /// Per-phase timings, phase order (empty when not instrumented).
    pub phases: Vec<PhaseTiming>,
    /// Per-shard records of the partitioned graph layout, shard order
    /// (empty for shared-array builds and for constructions that do not
    /// read from shards).
    pub shards: Vec<ShardTiming>,
    /// Which transport ran the sharded exploration phases
    /// ([`TransportKind::Inproc`] for the shared in-process fan-out).
    pub transport: TransportKind,
    /// **Measured** message statistics of a worker-pool build (`Some` only
    /// when `transport` is channel/process/socket on a sharded
    /// construction): exchange rounds driven, frontier messages and bytes
    /// per shard pair — including the round-end shipping of the output
    /// stream to the workers' retained partitions and the lazy fetch that
    /// merges them back.
    pub messages: Option<MessageStats>,
    /// Whether this output came from the construction cache.
    pub cache: CacheStatus,
}

impl BuildStats {
    /// Time spent in phase 0 — the dominant, sharded exploration phase —
    /// when it was recorded.
    pub fn phase0(&self) -> Option<Duration> {
        self.phases.first().map(|p| p.duration)
    }

    /// Total explorations across recorded phases.
    pub fn explorations(&self) -> usize {
        self.phases.iter().map(|p| p.explorations).sum()
    }
}

/// Collects [`PhaseTiming`]s as a build's phase loop runs.
#[derive(Debug, Default)]
pub(crate) struct PhaseClock {
    phases: Vec<PhaseTiming>,
}

impl PhaseClock {
    pub(crate) fn new() -> Self {
        PhaseClock::default()
    }

    /// Times `f` as phase `phase`; `f` returns `(result, explorations)`.
    pub(crate) fn measure<T>(&mut self, phase: usize, f: impl FnOnce() -> (T, usize)) -> T {
        let t0 = Instant::now();
        let (out, explorations) = f();
        self.phases.push(PhaseTiming {
            phase,
            duration: t0.elapsed(),
            explorations,
        });
        out
    }

    pub(crate) fn into_phases(self) -> Vec<PhaseTiming> {
        self.phases
    }
}

/// Adaptive prefetch policy for the sharded center-processing phases.
///
/// A phase prefetches explorations for a chunk of centers, then consumes
/// them sequentially; a center that was superclustered or buffered by an
/// earlier center in the chunk wastes its prefetched ball. The chunk size
/// is therefore adaptive: it grows (toward `256·threads`) while prefetched
/// balls are being used, and shrinks (toward `threads`) when most of a
/// chunk went stale — which happens in late phases, where `δ_i` is large
/// and one supercluster absorbs almost everything. With one thread the
/// chunk is pinned to 1: exactly the historical lazy loop.
///
/// The chunk size never affects the built output (consumption re-checks
/// every center's status), only the wasted work, so this policy is free to
/// adapt without breaking the byte-identical determinism contract.
#[derive(Debug, Clone)]
pub struct ChunkPolicy {
    threads: usize,
    chunk: usize,
}

impl ChunkPolicy {
    /// Policy for a phase running on `threads` workers.
    pub fn new(threads: usize) -> Self {
        ChunkPolicy {
            threads,
            chunk: if threads <= 1 { 1 } else { threads * 8 },
        }
    }

    /// Centers to prefetch in the next chunk (≥ 1).
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// Adapts to the last chunk: `prefetched` balls computed, `used` of
    /// them actually consumed.
    pub fn record(&mut self, prefetched: usize, used: usize) {
        if self.threads <= 1 || prefetched == 0 {
            return;
        }
        if used * 2 < prefetched {
            self.chunk = (self.chunk / 2).max(self.threads);
        } else if used * 4 >= prefetched * 3 {
            self.chunk = (self.chunk * 2).min(self.threads * 256);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_records_phase_order_and_explorations() {
        let mut clock = PhaseClock::new();
        let a: u32 = clock.measure(0, || (1, 10));
        let b: u32 = clock.measure(1, || (2, 0));
        assert_eq!((a, b), (1, 2));
        let phases = clock.into_phases();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].phase, 0);
        assert_eq!(phases[0].explorations, 10);
        assert_eq!(phases[1].explorations, 0);
    }

    #[test]
    fn stats_accessors() {
        let stats = BuildStats {
            threads: 4,
            total: Duration::from_millis(5),
            cache: CacheStatus::Uncached,
            shards: Vec::new(),
            transport: TransportKind::Inproc,
            messages: None,
            phases: vec![
                PhaseTiming {
                    phase: 0,
                    duration: Duration::from_millis(3),
                    explorations: 100,
                },
                PhaseTiming {
                    phase: 1,
                    duration: Duration::from_millis(1),
                    explorations: 7,
                },
            ],
        };
        assert_eq!(stats.phase0(), Some(Duration::from_millis(3)));
        assert_eq!(stats.explorations(), 107);
        assert_eq!(BuildStats::default().phase0(), None);
    }

    #[test]
    fn sequential_chunk_is_lazy() {
        let mut p = ChunkPolicy::new(1);
        assert_eq!(p.chunk(), 1);
        p.record(1, 0);
        assert_eq!(p.chunk(), 1, "sequential policy never grows");
        assert_eq!(ChunkPolicy::new(0).chunk(), 1);
    }

    #[test]
    fn parallel_chunk_adapts_to_staleness() {
        let mut p = ChunkPolicy::new(4);
        let initial = p.chunk();
        assert!(initial >= 4);
        // Fully-used chunks grow toward the cap.
        for _ in 0..20 {
            let c = p.chunk();
            p.record(c, c);
        }
        assert_eq!(p.chunk(), 4 * 256);
        // Mostly-stale chunks shrink back to the floor.
        for _ in 0..20 {
            let c = p.chunk();
            p.record(c, 0);
        }
        assert_eq!(p.chunk(), 4);
    }
}
