//! The unified build configuration and the paper-construction selector.

use crate::centralized::ProcessingOrder;
use crate::error::ParamError;
use crate::params::{CentralizedParams, DistributedParams, SpannerParams};

/// The paper constructions selectable through
/// [`EmulatorBuilder`](crate::api::EmulatorBuilder).
///
/// Baselines are not variants here — they come in through the
/// [`Construction`](crate::api::Construction) trait (see the adapter in
/// `usnae-baselines`), which keeps this enum closed over what the paper
/// actually proves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// Algorithm 1 (§2): sequential superclustering with buffer sets.
    #[default]
    Centralized,
    /// The fast centralized simulation of the distributed pipeline (§3.3).
    FastCentralized,
    /// The deterministic CONGEST-model construction (§3).
    Distributed,
    /// The §4 subgraph spanner (centralized).
    Spanner,
    /// The §4 subgraph spanner built in the CONGEST simulator.
    DistributedSpanner,
}

impl Algorithm {
    /// All paper constructions, registry order.
    pub fn all() -> [Algorithm; 5] {
        [
            Algorithm::Centralized,
            Algorithm::FastCentralized,
            Algorithm::Distributed,
            Algorithm::Spanner,
            Algorithm::DistributedSpanner,
        ]
    }

    /// The registry name of this construction.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Centralized => "centralized",
            Algorithm::FastCentralized => "fast-centralized",
            Algorithm::Distributed => "distributed",
            Algorithm::Spanner => "spanner",
            Algorithm::DistributedSpanner => "distributed-spanner",
        }
    }

    /// Parses a registry name back into the selector.
    pub fn parse(s: &str) -> Option<Algorithm> {
        Algorithm::all().into_iter().find(|a| a.name() == s)
    }

    /// Whether this construction runs on the CONGEST simulator (and hence
    /// reports [`CongestStats`](crate::api::CongestStats)).
    pub fn runs_on_congest(&self) -> bool {
        matches!(self, Algorithm::Distributed | Algorithm::DistributedSpanner)
    }

    /// The trait object driving this selector.
    pub fn construction(&self) -> Box<dyn crate::api::Construction> {
        use crate::api::constructions::*;
        match self {
            Algorithm::Centralized => Box::new(Centralized),
            Algorithm::FastCentralized => Box::new(FastCentralized),
            Algorithm::Distributed => Box::new(Distributed),
            Algorithm::Spanner => Box::new(Spanner),
            Algorithm::DistributedSpanner => Box::new(DistributedSpanner),
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One validated parameter set shared by every [`Construction`]
/// (paper constructions and baselines alike).
///
/// Replaces the per-construction triple
/// `CentralizedParams`/`DistributedParams`/`SpannerParams` at the API
/// surface; each construction derives its own schedule from the fields it
/// uses and ignores the rest ([`Supports`](crate::api::Supports) documents
/// which is which).
#[derive(Debug, Clone, PartialEq)]
pub struct BuildConfig {
    /// Stretch parameter `ε ∈ (0, 1)`.
    pub epsilon: f64,
    /// Sparsity parameter `κ ≥ 2` (size bound `n^(1+1/κ)`).
    pub kappa: u32,
    /// Round exponent `ρ ∈ [1/κ, 1/2]` for the §3/§4 schedules.
    pub rho: f64,
    /// Skip the paper's ε-rescaling (§2.2.4 / §3.2.4): keeps multi-phase
    /// structure alive at simulable sizes.
    pub raw_epsilon: bool,
    /// Center processing order (Algorithm 1; others are order-free).
    pub order: ProcessingOrder,
    /// Retain the per-phase [`Trace`](crate::api::Trace) on the output.
    pub traced: bool,
    /// Seed for randomized constructions (TZ06/EN17a baselines).
    pub seed: u64,
    /// Worker threads for the sharded exploration phases (1 = sequential;
    /// must be ≥ 1). Output is byte-identical for every thread count.
    pub threads: usize,
}

impl Default for BuildConfig {
    fn default() -> Self {
        BuildConfig {
            epsilon: 0.5,
            kappa: 4,
            rho: 0.5,
            raw_epsilon: false,
            order: ProcessingOrder::ById,
            traced: false,
            seed: 0,
            threads: 1,
        }
    }
}

impl BuildConfig {
    /// Validates the construction-independent fields — today, that
    /// `threads >= 1`. Every [`Construction`](crate::api::Construction)
    /// calls this before deriving its parameter schedule, so `threads == 0`
    /// surfaces as [`BuildError::Param`](crate::api::BuildError) instead of
    /// a panic inside the sharded phase loop.
    ///
    /// # Errors
    ///
    /// [`ParamError::ZeroThreads`] when `threads == 0`.
    pub fn validate(&self) -> Result<(), ParamError> {
        if self.threads == 0 {
            return Err(ParamError::ZeroThreads);
        }
        Ok(())
    }

    /// Derives the §2.1.2 parameter schedule, honoring
    /// [`raw_epsilon`](Self::raw_epsilon).
    ///
    /// # Errors
    ///
    /// [`ParamError`] when `ε` or `κ` violates its precondition.
    pub fn centralized_params(&self) -> Result<CentralizedParams, ParamError> {
        if self.raw_epsilon {
            CentralizedParams::with_raw_epsilon(self.epsilon, self.kappa)
        } else {
            CentralizedParams::new(self.epsilon, self.kappa)
        }
    }

    /// Derives the §3.1.1 parameter schedule.
    ///
    /// # Errors
    ///
    /// [`ParamError`] when `ε`, `κ` or `ρ` violates its precondition.
    pub fn distributed_params(&self) -> Result<DistributedParams, ParamError> {
        if self.raw_epsilon {
            DistributedParams::with_raw_epsilon(self.epsilon, self.kappa, self.rho)
        } else {
            DistributedParams::new(self.epsilon, self.kappa, self.rho)
        }
    }

    /// Derives the §4 parameter schedule.
    ///
    /// # Errors
    ///
    /// [`ParamError`] when `ε`, `κ` or `ρ` violates its precondition.
    pub fn spanner_params(&self) -> Result<SpannerParams, ParamError> {
        if self.raw_epsilon {
            SpannerParams::with_raw_epsilon(self.epsilon, self.kappa, self.rho)
        } else {
            SpannerParams::new(self.epsilon, self.kappa, self.rho)
        }
    }

    /// The headline size bound `n^(1+1/κ)` shared by all paper schedules.
    pub fn size_bound(&self, n: usize) -> f64 {
        (n as f64).powf(1.0 + 1.0 / self.kappa as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_names_round_trip() {
        for a in Algorithm::all() {
            assert_eq!(Algorithm::parse(a.name()), Some(a));
            assert_eq!(a.to_string(), a.name());
        }
        assert_eq!(Algorithm::parse("nope"), None);
    }

    #[test]
    fn default_config_is_valid_everywhere() {
        let cfg = BuildConfig::default();
        assert!(cfg.validate().is_ok());
        assert!(cfg.centralized_params().is_ok());
        assert!(cfg.distributed_params().is_ok());
        assert!(cfg.spanner_params().is_ok());
    }

    #[test]
    fn zero_threads_rejected_with_param_error() {
        let cfg = BuildConfig {
            threads: 0,
            ..BuildConfig::default()
        };
        assert_eq!(cfg.validate(), Err(ParamError::ZeroThreads));
        for threads in [1usize, 2, 8, 128] {
            let cfg = BuildConfig {
                threads,
                ..BuildConfig::default()
            };
            assert!(cfg.validate().is_ok(), "threads={threads}");
        }
    }

    #[test]
    fn raw_epsilon_flows_through() {
        let cfg = BuildConfig {
            raw_epsilon: true,
            ..BuildConfig::default()
        };
        assert_eq!(
            cfg.centralized_params().unwrap().schedule().eps_internal,
            0.5
        );
        let rescaled = BuildConfig::default().centralized_params().unwrap();
        assert!(rescaled.schedule().eps_internal < 0.1);
    }

    #[test]
    fn size_bound_matches_params() {
        let cfg = BuildConfig::default();
        let p = cfg.centralized_params().unwrap();
        assert!((cfg.size_bound(1000) - p.size_bound(1000)).abs() < 1e-9);
    }
}
