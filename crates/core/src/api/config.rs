//! The unified build configuration and the paper-construction selector.

use crate::centralized::ProcessingOrder;
use crate::error::ParamError;
use crate::params::{CentralizedParams, DistributedParams, SpannerParams};
use usnae_graph::partition::PartitionPolicy;
use usnae_workers::TransportKind;

/// The paper constructions selectable through
/// [`EmulatorBuilder`](crate::api::EmulatorBuilder).
///
/// Baselines are not variants here — they come in through the
/// [`Construction`](crate::api::Construction) trait (see the adapter in
/// `usnae-baselines`), which keeps this enum closed over what the paper
/// actually proves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// Algorithm 1 (§2): sequential superclustering with buffer sets.
    #[default]
    Centralized,
    /// The fast centralized simulation of the distributed pipeline (§3.3).
    FastCentralized,
    /// The deterministic CONGEST-model construction (§3).
    Distributed,
    /// The §4 subgraph spanner (centralized).
    Spanner,
    /// The §4 subgraph spanner built in the CONGEST simulator.
    DistributedSpanner,
}

impl Algorithm {
    /// All paper constructions, registry order.
    pub fn all() -> [Algorithm; 5] {
        [
            Algorithm::Centralized,
            Algorithm::FastCentralized,
            Algorithm::Distributed,
            Algorithm::Spanner,
            Algorithm::DistributedSpanner,
        ]
    }

    /// The registry name of this construction.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Centralized => "centralized",
            Algorithm::FastCentralized => "fast-centralized",
            Algorithm::Distributed => "distributed",
            Algorithm::Spanner => "spanner",
            Algorithm::DistributedSpanner => "distributed-spanner",
        }
    }

    /// Parses a registry name back into the selector.
    pub fn parse(s: &str) -> Option<Algorithm> {
        Algorithm::all().into_iter().find(|a| a.name() == s)
    }

    /// Whether this construction runs on the CONGEST simulator (and hence
    /// reports [`CongestStats`](crate::api::CongestStats)).
    pub fn runs_on_congest(&self) -> bool {
        matches!(self, Algorithm::Distributed | Algorithm::DistributedSpanner)
    }

    /// The trait object driving this selector.
    pub fn construction(&self) -> Box<dyn crate::api::Construction> {
        use crate::api::constructions::*;
        match self {
            Algorithm::Centralized => Box::new(Centralized),
            Algorithm::FastCentralized => Box::new(FastCentralized),
            Algorithm::Distributed => Box::new(Distributed),
            Algorithm::Spanner => Box::new(Spanner),
            Algorithm::DistributedSpanner => Box::new(DistributedSpanner),
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One validated parameter set shared by every [`Construction`]
/// (paper constructions and baselines alike).
///
/// Replaces the per-construction triple
/// `CentralizedParams`/`DistributedParams`/`SpannerParams` at the API
/// surface; each construction derives its own schedule from the fields it
/// uses and ignores the rest ([`Supports`](crate::api::Supports) documents
/// which is which).
///
/// `BuildConfig` is a full `Eq + Hash` key: the float fields (`ε`, `ρ`)
/// hash by their normalized bit patterns (`-0.0` folds onto `0.0`), and
/// [`validate`](Self::validate) rejects NaN/infinite values up front, so
/// every config a construction accepts is safely usable as a cache-map key.
/// For cross-process keys (the on-disk construction cache) use
/// [`stable_digest`](Self::stable_digest), which promises the same bytes on
/// every platform and toolchain — `std`'s hashers do not.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildConfig {
    /// Stretch parameter `ε ∈ (0, 1)`.
    pub epsilon: f64,
    /// Sparsity parameter `κ ≥ 2` (size bound `n^(1+1/κ)`).
    pub kappa: u32,
    /// Round exponent `ρ ∈ [1/κ, 1/2]` for the §3/§4 schedules.
    pub rho: f64,
    /// Skip the paper's ε-rescaling (§2.2.4 / §3.2.4): keeps multi-phase
    /// structure alive at simulable sizes.
    pub raw_epsilon: bool,
    /// Center processing order (Algorithm 1; others are order-free).
    pub order: ProcessingOrder,
    /// Retain the per-phase [`Trace`](crate::api::Trace) on the output.
    pub traced: bool,
    /// Seed for randomized constructions (TZ06/EN17a baselines).
    pub seed: u64,
    /// Worker threads for the sharded exploration phases (1 = sequential;
    /// must be ≥ 1). Output is byte-identical for every thread count.
    pub threads: usize,
    /// Partitioned-graph layout: CSR shards the input is split into for
    /// the exploration phases (0 = the shared adjacency array; ≥ 1 builds
    /// that many per-worker shards, clamped to `n`). Output is
    /// byte-identical for every shard count and policy.
    pub shards: usize,
    /// Partitioning strategy used when `shards >= 1`.
    pub partition: PartitionPolicy,
    /// Execution substrate for the sharded exploration phases:
    /// [`TransportKind::Inproc`] (default) runs the in-process fan-out;
    /// `Channel`/`Process` move each shard's work to its owning worker
    /// (requires `shards >= 1`) and record measured
    /// [`MessageStats`](crate::api::MessageStats). Output is
    /// byte-identical for every transport.
    pub transport: TransportKind,
}

impl Default for BuildConfig {
    fn default() -> Self {
        BuildConfig {
            epsilon: 0.5,
            kappa: 4,
            rho: 0.5,
            raw_epsilon: false,
            order: ProcessingOrder::ById,
            traced: false,
            seed: 0,
            threads: 1,
            shards: 0,
            partition: PartitionPolicy::Range,
            transport: TransportKind::Inproc,
        }
    }
}

/// Normalizes a float for hashing/digesting: `-0.0` and `0.0` compare
/// equal, so they must fold onto one bit pattern (NaN never reaches a
/// digest — `validate` rejects it).
fn float_bits(x: f64) -> u64 {
    if x == 0.0 {
        0.0f64.to_bits()
    } else {
        x.to_bits()
    }
}

// `PartialEq` is derived; the float fields are the only obstacle to `Eq`,
// and `validate` rejects NaN (the one non-reflexive value), so promoting
// the derived partial equivalence to a total one is sound for every config
// a construction will accept. This is what lets `BuildConfig` key caches.
impl Eq for BuildConfig {}

impl std::hash::Hash for BuildConfig {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Must agree with the derived PartialEq: floats hash by normalized
        // bit pattern, everything else by value. Destructured so adding a
        // field to BuildConfig is a compile error here until it is hashed.
        let BuildConfig {
            epsilon,
            kappa,
            rho,
            raw_epsilon,
            order,
            traced,
            seed,
            threads,
            shards,
            partition,
            transport,
        } = self;
        float_bits(*epsilon).hash(state);
        kappa.hash(state);
        float_bits(*rho).hash(state);
        raw_epsilon.hash(state);
        order.hash(state);
        traced.hash(state);
        seed.hash(state);
        threads.hash(state);
        shards.hash(state);
        partition.hash(state);
        transport.hash(state);
    }
}

impl BuildConfig {
    /// Validates the construction-independent fields: `threads >= 1` and
    /// finite `ε`/`ρ`. Every [`Construction`](crate::api::Construction)
    /// calls this before deriving its parameter schedule, so `threads == 0`
    /// surfaces as [`BuildError::Param`](crate::api::BuildError) instead of
    /// a panic inside the sharded phase loop, and a NaN float never becomes
    /// a cache key.
    ///
    /// # Errors
    ///
    /// [`ParamError::ZeroThreads`] when `threads == 0`;
    /// [`ParamError::NonFinite`] when `ε` or `ρ` is NaN or infinite;
    /// [`ParamError::TransportNeedsShards`] when a worker transport is
    /// requested without a partitioned layout (`shards == 0`).
    pub fn validate(&self) -> Result<(), ParamError> {
        if self.threads == 0 {
            return Err(ParamError::ZeroThreads);
        }
        if self.transport != TransportKind::Inproc && self.shards == 0 {
            return Err(ParamError::TransportNeedsShards {
                transport: self.transport.name(),
            });
        }
        if !self.epsilon.is_finite() {
            return Err(ParamError::NonFinite {
                field: "epsilon",
                value: self.epsilon,
            });
        }
        if !self.rho.is_finite() {
            return Err(ParamError::NonFinite {
                field: "rho",
                value: self.rho,
            });
        }
        Ok(())
    }

    /// Cross-process digest of the *output-relevant* key fields — what the
    /// on-disk construction cache keys on, alongside the graph fingerprint
    /// and algorithm name.
    ///
    /// Two deliberate exclusions, both justified by the determinism
    /// guarantee (see [`crate::api`]): `threads` never changes the built
    /// stream, and `traced` only toggles whether the in-memory trace is
    /// retained — so a warm entry built at any thread count serves every
    /// other. Everything else (`ε`, `κ`, `ρ`, `raw_epsilon`, `order`,
    /// `seed`) is folded in via the workspace FNV primitive, which is
    /// stable across platforms and toolchains.
    pub fn stable_digest(&self) -> u64 {
        // Destructured so a future output-relevant field cannot be
        // forgotten here silently (which would serve stale cache hits):
        // adding a field breaks this binding until it is either folded in
        // below or explicitly listed as output-irrelevant.
        let BuildConfig {
            epsilon,
            kappa,
            rho,
            raw_epsilon,
            order,
            seed,
            traced: _,    // retention of the in-memory trace only
            threads: _,   // never changes the built stream (determinism)
            shards: _,    // sharded layout is byte-identical to shared
            partition: _, // ditto — enforced by partition_conformance.rs
            transport: _, // ditto — enforced by worker_conformance.rs
        } = self;
        let mut d = usnae_graph::metrics::Fnv64::new();
        d.write_u64(float_bits(*epsilon));
        d.write_u64(u64::from(*kappa));
        d.write_u64(float_bits(*rho));
        d.write_u64(u64::from(*raw_epsilon));
        d.write_u64(match order {
            ProcessingOrder::ById => 0,
            ProcessingOrder::ByIdDesc => 1,
            ProcessingOrder::ByDegreeDesc => 2,
            ProcessingOrder::ByDegreeAsc => 3,
        });
        d.write_u64(*seed);
        d.finish()
    }

    /// Derives the §2.1.2 parameter schedule, honoring
    /// [`raw_epsilon`](Self::raw_epsilon).
    ///
    /// # Errors
    ///
    /// [`ParamError`] when `ε` or `κ` violates its precondition.
    pub fn centralized_params(&self) -> Result<CentralizedParams, ParamError> {
        if self.raw_epsilon {
            CentralizedParams::with_raw_epsilon(self.epsilon, self.kappa)
        } else {
            CentralizedParams::new(self.epsilon, self.kappa)
        }
    }

    /// Derives the §3.1.1 parameter schedule.
    ///
    /// # Errors
    ///
    /// [`ParamError`] when `ε`, `κ` or `ρ` violates its precondition.
    pub fn distributed_params(&self) -> Result<DistributedParams, ParamError> {
        if self.raw_epsilon {
            DistributedParams::with_raw_epsilon(self.epsilon, self.kappa, self.rho)
        } else {
            DistributedParams::new(self.epsilon, self.kappa, self.rho)
        }
    }

    /// Derives the §4 parameter schedule.
    ///
    /// # Errors
    ///
    /// [`ParamError`] when `ε`, `κ` or `ρ` violates its precondition.
    pub fn spanner_params(&self) -> Result<SpannerParams, ParamError> {
        if self.raw_epsilon {
            SpannerParams::with_raw_epsilon(self.epsilon, self.kappa, self.rho)
        } else {
            SpannerParams::new(self.epsilon, self.kappa, self.rho)
        }
    }

    /// The headline size bound `n^(1+1/κ)` shared by all paper schedules.
    pub fn size_bound(&self, n: usize) -> f64 {
        (n as f64).powf(1.0 + 1.0 / self.kappa as f64)
    }

    /// The graph view this config's exploration phases read from: the
    /// shared adjacency array (`shards == 0`) or a freshly partitioned
    /// [`ShardedCsr`](usnae_graph::partition::ShardedCsr) under
    /// [`partition`](Self::partition).
    pub fn graph_view<'g, S: usnae_graph::AdjStorage>(
        &self,
        g: &'g usnae_graph::GraphCore<S>,
    ) -> usnae_graph::partition::GraphView<'g, S> {
        usnae_graph::partition::GraphView::new(g, self.partition, self.shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_names_round_trip() {
        for a in Algorithm::all() {
            assert_eq!(Algorithm::parse(a.name()), Some(a));
            assert_eq!(a.to_string(), a.name());
        }
        assert_eq!(Algorithm::parse("nope"), None);
    }

    #[test]
    fn default_config_is_valid_everywhere() {
        let cfg = BuildConfig::default();
        assert!(cfg.validate().is_ok());
        assert!(cfg.centralized_params().is_ok());
        assert!(cfg.distributed_params().is_ok());
        assert!(cfg.spanner_params().is_ok());
    }

    #[test]
    fn zero_threads_rejected_with_param_error() {
        let cfg = BuildConfig {
            threads: 0,
            ..BuildConfig::default()
        };
        assert_eq!(cfg.validate(), Err(ParamError::ZeroThreads));
        for threads in [1usize, 2, 8, 128] {
            let cfg = BuildConfig {
                threads,
                ..BuildConfig::default()
            };
            assert!(cfg.validate().is_ok(), "threads={threads}");
        }
    }

    #[test]
    fn non_finite_floats_rejected_before_they_can_key_a_cache() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let eps = BuildConfig {
                epsilon: bad,
                ..BuildConfig::default()
            };
            assert!(matches!(
                eps.validate(),
                Err(ParamError::NonFinite {
                    field: "epsilon",
                    ..
                })
            ));
            let rho = BuildConfig {
                rho: bad,
                ..BuildConfig::default()
            };
            assert!(matches!(
                rho.validate(),
                Err(ParamError::NonFinite { field: "rho", .. })
            ));
        }
    }

    #[test]
    fn config_is_a_hash_map_key() {
        use std::collections::HashMap;
        let mut m: HashMap<BuildConfig, &str> = HashMap::new();
        m.insert(BuildConfig::default(), "default");
        let again = BuildConfig::default();
        assert_eq!(m.get(&again), Some(&"default"));
        let other = BuildConfig {
            kappa: 8,
            ..BuildConfig::default()
        };
        assert!(!m.contains_key(&other));
    }

    #[test]
    fn hash_respects_zero_normalization() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let pos = BuildConfig {
            rho: 0.0,
            ..BuildConfig::default()
        };
        let neg = BuildConfig {
            rho: -0.0,
            ..BuildConfig::default()
        };
        assert_eq!(pos, neg, "derived PartialEq treats ±0.0 as equal");
        let digest = |c: &BuildConfig| {
            let mut h = DefaultHasher::new();
            c.hash(&mut h);
            h.finish()
        };
        assert_eq!(digest(&pos), digest(&neg), "so Hash must too");
        assert_eq!(pos.stable_digest(), neg.stable_digest());
    }

    #[test]
    fn stable_digest_keys_on_output_relevant_fields_only() {
        let base = BuildConfig::default();
        // threads, traced, and the partitioned layout never change the
        // built stream — same key.
        let threaded = BuildConfig {
            threads: 8,
            traced: true,
            shards: 4,
            partition: PartitionPolicy::DegreeBalanced,
            transport: TransportKind::Channel,
            ..base.clone()
        };
        assert_eq!(base.stable_digest(), threaded.stable_digest());
        // Every output-relevant field must move the digest.
        let variants = [
            BuildConfig {
                epsilon: 0.25,
                ..base.clone()
            },
            BuildConfig {
                kappa: 6,
                ..base.clone()
            },
            BuildConfig {
                rho: 0.4,
                ..base.clone()
            },
            BuildConfig {
                raw_epsilon: true,
                ..base.clone()
            },
            BuildConfig {
                order: ProcessingOrder::ByDegreeDesc,
                ..base.clone()
            },
            BuildConfig {
                seed: 99,
                ..base.clone()
            },
        ];
        for v in &variants {
            assert_ne!(base.stable_digest(), v.stable_digest(), "{v:?}");
        }
    }

    #[test]
    fn worker_transports_require_a_partitioned_layout() {
        for kind in [TransportKind::Channel, TransportKind::Process] {
            let unsharded = BuildConfig {
                transport: kind,
                ..BuildConfig::default()
            };
            assert_eq!(
                unsharded.validate(),
                Err(ParamError::TransportNeedsShards {
                    transport: kind.name()
                })
            );
            let sharded = BuildConfig {
                transport: kind,
                shards: 2,
                ..BuildConfig::default()
            };
            assert!(sharded.validate().is_ok());
        }
    }

    #[test]
    fn raw_epsilon_flows_through() {
        let cfg = BuildConfig {
            raw_epsilon: true,
            ..BuildConfig::default()
        };
        assert_eq!(
            cfg.centralized_params().unwrap().schedule().eps_internal,
            0.5
        );
        let rescaled = BuildConfig::default().centralized_params().unwrap();
        assert!(rescaled.schedule().eps_internal < 0.1);
    }

    #[test]
    fn size_bound_matches_params() {
        let cfg = BuildConfig::default();
        let p = cfg.centralized_params().unwrap();
        assert!((cfg.size_bound(1000) - p.size_bound(1000)).abs() < 1e-9);
    }
}
