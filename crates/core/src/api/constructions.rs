//! [`Construction`] implementations for the paper's own algorithms.

use crate::api::construction::require_inproc;
use crate::api::{
    BuildConfig, BuildError, BuildOutput, CongestStats, Construction, Supports, Trace,
};
use crate::centralized::build_centralized_exec;
use crate::distributed::driver::build_distributed;
use crate::distributed::spanner_driver::build_spanner_congest;
use crate::engine::{finalize_worker_build, Engine};
use crate::exec::BuildStats;
use crate::fast_centralized::build_fast_exec;
use crate::spanner::build_spanner_exec;
use std::time::Instant;
use usnae_graph::{AdjStorage, Graph, GraphCore, MappedGraph};

/// Algorithm 1 (§2): sequential superclustering with buffer sets.
#[derive(Debug, Clone, Copy, Default)]
pub struct Centralized;

impl Centralized {
    fn build_impl<S: AdjStorage>(
        &self,
        g: &GraphCore<S>,
        cfg: &BuildConfig,
    ) -> Result<BuildOutput, BuildError> {
        cfg.validate()?;
        let params = cfg.centralized_params()?;
        let t0 = Instant::now();
        let engine = Engine::new(g, cfg);
        let (emulator, trace, phases) = build_centralized_exec(g, &params, cfg.order, &engine);
        let (report, held) = engine.finish_retaining(emulator.provenance())?;
        let mut out = BuildOutput {
            emulator,
            certified: Some(params.certified_stretch()),
            size_bound: Some(params.size_bound(g.num_vertices())),
            trace: cfg.traced.then_some(Trace::Centralized(trace)),
            congest: None,
            stats: BuildStats {
                threads: cfg.threads,
                total: t0.elapsed(),
                phases,
                shards: report.shards,
                transport: report.transport,
                messages: report.messages,
                ..BuildStats::default()
            },
            algorithm: self.name(),
        };
        finalize_worker_build(&mut out, held, cfg)?;
        Ok(out)
    }
}

impl Construction for Centralized {
    fn name(&self) -> &'static str {
        "centralized"
    }

    fn description(&self) -> &'static str {
        "Algorithm 1 (§2): sequential SAI with buffer sets; ≤ n^(1+1/κ) edges, constant exactly 1"
    }

    fn supports(&self) -> Supports {
        Supports {
            uses_order: true,
            traced: true,
            parallel: true,
            certified: true,
            ..Supports::none()
        }
    }

    fn certified_stretch(&self, cfg: &BuildConfig) -> Option<(f64, f64)> {
        cfg.centralized_params().ok().map(|p| p.certified_stretch())
    }

    fn size_bound(&self, n: usize, cfg: &BuildConfig) -> Option<f64> {
        Some(cfg.size_bound(n))
    }

    fn build(&self, g: &Graph, cfg: &BuildConfig) -> Result<BuildOutput, BuildError> {
        self.build_impl(g, cfg)
    }

    fn build_mapped(&self, g: &MappedGraph, cfg: &BuildConfig) -> Result<BuildOutput, BuildError> {
        self.build_impl(g, cfg)
    }
}

/// The fast centralized simulation (§3.3).
#[derive(Debug, Clone, Copy, Default)]
pub struct FastCentralized;

impl FastCentralized {
    fn build_impl<S: AdjStorage>(
        &self,
        g: &GraphCore<S>,
        cfg: &BuildConfig,
    ) -> Result<BuildOutput, BuildError> {
        cfg.validate()?;
        let params = cfg.distributed_params()?;
        let t0 = Instant::now();
        let engine = Engine::new(g, cfg);
        let (emulator, trace, phases) = build_fast_exec(g, &params, &engine);
        let (report, held) = engine.finish_retaining(emulator.provenance())?;
        let mut out = BuildOutput {
            emulator,
            certified: Some(params.certified_stretch()),
            size_bound: Some(params.size_bound(g.num_vertices())),
            trace: cfg.traced.then_some(Trace::Fast(trace)),
            congest: None,
            stats: BuildStats {
                threads: cfg.threads,
                total: t0.elapsed(),
                phases,
                shards: report.shards,
                transport: report.transport,
                messages: report.messages,
                ..BuildStats::default()
            },
            algorithm: self.name(),
        };
        finalize_worker_build(&mut out, held, cfg)?;
        Ok(out)
    }
}

impl Construction for FastCentralized {
    fn name(&self) -> &'static str {
        "fast-centralized"
    }

    fn description(&self) -> &'static str {
        "Fast centralized simulation of the distributed pipeline (§3.3), O(|E|·β·n^ρ) time"
    }

    fn supports(&self) -> Supports {
        Supports {
            uses_rho: true,
            traced: true,
            parallel: true,
            certified: true,
            ..Supports::none()
        }
    }

    fn certified_stretch(&self, cfg: &BuildConfig) -> Option<(f64, f64)> {
        cfg.distributed_params().ok().map(|p| p.certified_stretch())
    }

    fn size_bound(&self, n: usize, cfg: &BuildConfig) -> Option<f64> {
        Some(cfg.size_bound(n))
    }

    fn build(&self, g: &Graph, cfg: &BuildConfig) -> Result<BuildOutput, BuildError> {
        self.build_impl(g, cfg)
    }

    fn build_mapped(&self, g: &MappedGraph, cfg: &BuildConfig) -> Result<BuildOutput, BuildError> {
        self.build_impl(g, cfg)
    }
}

/// The deterministic CONGEST-model construction (§3).
#[derive(Debug, Clone, Copy, Default)]
pub struct Distributed;

impl Construction for Distributed {
    fn name(&self) -> &'static str {
        "distributed"
    }

    fn description(&self) -> &'static str {
        "Deterministic CONGEST construction (§3): O(β·n^ρ) rounds, both endpoints know every edge"
    }

    fn supports(&self) -> Supports {
        Supports {
            uses_rho: true,
            traced: true,
            congest: true,
            certified: true,
            ..Supports::none()
        }
    }

    fn certified_stretch(&self, cfg: &BuildConfig) -> Option<(f64, f64)> {
        cfg.distributed_params().ok().map(|p| p.certified_stretch())
    }

    fn size_bound(&self, n: usize, cfg: &BuildConfig) -> Option<f64> {
        Some(cfg.size_bound(n))
    }

    fn build(&self, g: &Graph, cfg: &BuildConfig) -> Result<BuildOutput, BuildError> {
        cfg.validate()?;
        require_inproc(self.name(), cfg)?;
        let params = cfg.distributed_params()?;
        let t0 = Instant::now();
        let build = build_distributed(g, &params)?;
        Ok(BuildOutput {
            emulator: build.emulator,
            certified: Some(params.certified_stretch()),
            size_bound: Some(params.size_bound(g.num_vertices())),
            trace: cfg.traced.then_some(Trace::Distributed(build.phases)),
            congest: Some(CongestStats {
                metrics: build.metrics,
                knowledge_checked: build.knowledge_checked,
                knowledge_violations: build.knowledge_violations,
            }),
            stats: BuildStats {
                threads: cfg.threads,
                total: t0.elapsed(),
                phases: build.timings,
                ..BuildStats::default()
            },
            algorithm: self.name(),
        })
    }
}

/// The §4 subgraph spanner (centralized).
#[derive(Debug, Clone, Copy, Default)]
pub struct Spanner;

/// Hidden-constant allowance for the §4 `O(n^(1+1/κ))` spanner bound
/// (eq. 39): the registry parity suite checks against
/// `SPANNER_SIZE_CONSTANT · n^(1+1/κ) + n` on every family it runs.
pub const SPANNER_SIZE_CONSTANT: f64 = 4.0;

impl Spanner {
    fn build_impl<S: AdjStorage>(
        &self,
        g: &GraphCore<S>,
        cfg: &BuildConfig,
    ) -> Result<BuildOutput, BuildError> {
        cfg.validate()?;
        let params = cfg.spanner_params()?;
        let t0 = Instant::now();
        let engine = Engine::new(g, cfg);
        let (emulator, trace, phases) = build_spanner_exec(g, &params, &engine);
        let (report, held) = engine.finish_retaining(emulator.provenance())?;
        let n = g.num_vertices();
        let mut out = BuildOutput {
            emulator,
            certified: Some(params.certified_stretch()),
            size_bound: Some(SPANNER_SIZE_CONSTANT * params.size_bound(n) + n as f64),
            trace: cfg.traced.then_some(Trace::Spanner(trace)),
            congest: None,
            stats: BuildStats {
                threads: cfg.threads,
                total: t0.elapsed(),
                phases,
                shards: report.shards,
                transport: report.transport,
                messages: report.messages,
                ..BuildStats::default()
            },
            algorithm: self.name(),
        };
        finalize_worker_build(&mut out, held, cfg)?;
        Ok(out)
    }
}

impl Construction for Spanner {
    fn name(&self) -> &'static str {
        "spanner"
    }

    fn description(&self) -> &'static str {
        "§4 near-additive spanner: a subgraph of G with O(n^(1+1/κ)) edges (no O(β) factor)"
    }

    fn supports(&self) -> Supports {
        Supports {
            uses_rho: true,
            traced: true,
            parallel: true,
            subgraph: true,
            certified: true,
            ..Supports::none()
        }
    }

    fn certified_stretch(&self, cfg: &BuildConfig) -> Option<(f64, f64)> {
        cfg.spanner_params().ok().map(|p| p.certified_stretch())
    }

    fn size_bound(&self, n: usize, cfg: &BuildConfig) -> Option<f64> {
        Some(SPANNER_SIZE_CONSTANT * cfg.size_bound(n) + n as f64)
    }

    fn build(&self, g: &Graph, cfg: &BuildConfig) -> Result<BuildOutput, BuildError> {
        self.build_impl(g, cfg)
    }

    fn build_mapped(&self, g: &MappedGraph, cfg: &BuildConfig) -> Result<BuildOutput, BuildError> {
        self.build_impl(g, cfg)
    }
}

/// The §4 spanner built in the CONGEST simulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct DistributedSpanner;

impl Construction for DistributedSpanner {
    fn name(&self) -> &'static str {
        "distributed-spanner"
    }

    fn description(&self) -> &'static str {
        "§4 spanner in the CONGEST model: forest edges added locally, no hub splitting"
    }

    fn supports(&self) -> Supports {
        Supports {
            uses_rho: true,
            traced: true,
            congest: true,
            subgraph: true,
            certified: true,
            ..Supports::none()
        }
    }

    fn certified_stretch(&self, cfg: &BuildConfig) -> Option<(f64, f64)> {
        cfg.spanner_params().ok().map(|p| p.certified_stretch())
    }

    fn size_bound(&self, n: usize, cfg: &BuildConfig) -> Option<f64> {
        Some(SPANNER_SIZE_CONSTANT * cfg.size_bound(n) + n as f64)
    }

    fn build(&self, g: &Graph, cfg: &BuildConfig) -> Result<BuildOutput, BuildError> {
        cfg.validate()?;
        require_inproc(self.name(), cfg)?;
        let params = cfg.spanner_params()?;
        let t0 = Instant::now();
        let build = build_spanner_congest(g, &params)?;
        let n = g.num_vertices();
        Ok(BuildOutput {
            emulator: build.spanner,
            certified: Some(params.certified_stretch()),
            size_bound: Some(SPANNER_SIZE_CONSTANT * params.size_bound(n) + n as f64),
            trace: cfg
                .traced
                .then_some(Trace::DistributedSpanner(build.phases)),
            congest: Some(CongestStats {
                metrics: build.metrics,
                knowledge_checked: 0,
                knowledge_violations: 0,
            }),
            stats: BuildStats {
                threads: cfg.threads,
                total: t0.elapsed(),
                phases: build.timings,
                ..BuildStats::default()
            },
            algorithm: self.name(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usnae_graph::generators;

    #[test]
    fn names_match_supports() {
        let g = generators::gnp_connected(60, 0.1, 1).unwrap();
        let cfg = BuildConfig::default();
        let list: Vec<Box<dyn Construction>> = vec![
            Box::new(Centralized),
            Box::new(FastCentralized),
            Box::new(Distributed),
            Box::new(Spanner),
            Box::new(DistributedSpanner),
        ];
        for c in list {
            let out = c.build(&g, &cfg).unwrap();
            assert_eq!(out.algorithm, c.name());
            let s = c.supports();
            assert_eq!(out.congest.is_some(), s.congest, "{}", c.name());
            assert_eq!(out.certified.is_some(), s.certified, "{}", c.name());
            if s.subgraph {
                assert!(
                    crate::verify::is_subgraph_spanner(&g, out.emulator.graph()),
                    "{}",
                    c.name()
                );
            }
        }
    }

    #[test]
    fn congest_constructions_refuse_worker_transports() {
        let g = generators::grid2d(5, 5).unwrap();
        for c in [&Distributed as &dyn Construction, &DistributedSpanner] {
            for transport in [
                usnae_workers::TransportKind::Channel,
                usnae_workers::TransportKind::Process,
                usnae_workers::TransportKind::Socket,
            ] {
                let cfg = BuildConfig {
                    shards: 2,
                    transport,
                    ..BuildConfig::default()
                };
                match c.build(&g, &cfg) {
                    Err(BuildError::Param(crate::ParamError::TransportUnsupported {
                        algorithm,
                        transport: t,
                    })) => {
                        assert_eq!(algorithm, c.name());
                        assert_eq!(t, transport.name());
                    }
                    other => panic!(
                        "{} must refuse the {} transport, got {other:?}",
                        c.name(),
                        transport.name()
                    ),
                }
            }
            // The explicit in-process default still builds.
            assert!(c.build(&g, &BuildConfig::default()).is_ok(), "{}", c.name());
        }
    }

    #[test]
    fn traced_flag_respected() {
        let g = generators::grid2d(7, 7).unwrap();
        let cfg = BuildConfig {
            traced: true,
            ..BuildConfig::default()
        };
        let out = Spanner.build(&g, &cfg).unwrap();
        assert!(out.trace.is_some());
        let untraced = Spanner.build(&g, &BuildConfig::default()).unwrap();
        assert!(untraced.trace.is_none());
    }

    #[test]
    fn mapped_builds_match_heap_builds() {
        let g = generators::gnp_connected(70, 0.09, 4).unwrap();
        let dir = std::env::temp_dir().join(format!("usnae-ctor-mapped-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.csr");
        g.write_csr_file(&path).unwrap();
        let mg = MappedGraph::open(&path).unwrap();
        let cfg = BuildConfig {
            traced: true,
            ..BuildConfig::default()
        };
        let list: Vec<Box<dyn Construction>> = vec![
            Box::new(Centralized),
            Box::new(FastCentralized),
            Box::new(Distributed),
            Box::new(Spanner),
            Box::new(DistributedSpanner),
        ];
        for c in list {
            let heap = c.build(&g, &cfg).unwrap();
            let mapped = c.build_mapped(&mg, &cfg).unwrap();
            assert_eq!(
                heap.emulator.provenance(),
                mapped.emulator.provenance(),
                "{}: mapped build diverged from heap build",
                c.name()
            );
            assert_eq!(heap.certified, mapped.certified, "{}", c.name());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn certified_stretch_matches_build_output() {
        let g = generators::gnp_connected(80, 0.08, 2).unwrap();
        let cfg = BuildConfig::default();
        for c in [&Centralized as &dyn Construction, &FastCentralized] {
            let pre = c.certified_stretch(&cfg).unwrap();
            let out = c.build(&g, &cfg).unwrap();
            assert_eq!(Some(pre), out.certified, "{}", c.name());
        }
    }
}
