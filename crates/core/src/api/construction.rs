//! The object-safe [`Construction`] trait and its error/capability types.

use crate::api::{BuildConfig, BuildOutput};
use crate::error::ParamError;
use usnae_congest::CongestError;
use usnae_graph::{Graph, MappedGraph};

/// What a [`Construction`] consumes from the [`BuildConfig`] and what its
/// output provides — the capability sheet generic consumers branch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Supports {
    /// Reads `rho` (the §3/§4 schedules).
    pub uses_rho: bool,
    /// Reads `order` (Algorithm 1's center processing order).
    pub uses_order: bool,
    /// Reads `seed` (randomized constructions).
    pub uses_seed: bool,
    /// Honors `traced` by returning a [`Trace`](crate::api::Trace).
    pub traced: bool,
    /// Runs on the CONGEST simulator and reports
    /// [`CongestStats`](crate::api::CongestStats).
    pub congest: bool,
    /// Shards its per-center explorations across `BuildConfig::threads`
    /// (constructions without this flag accept the knob but run
    /// sequentially; output is identical either way).
    pub parallel: bool,
    /// Output is a unit-weight subgraph of `G` (a spanner).
    pub subgraph: bool,
    /// Output carries a certified `(α, β)` stretch pair.
    pub certified: bool,
}

impl Supports {
    /// Baseline defaults: centralized, deterministic, untraced emulator with
    /// no certification. Constructions override what they add.
    pub const fn none() -> Self {
        Supports {
            uses_rho: false,
            uses_order: false,
            uses_seed: false,
            traced: false,
            congest: false,
            parallel: false,
            subgraph: false,
            certified: false,
        }
    }
}

/// Failure modes of [`Construction::build`].
#[derive(Debug)]
pub enum BuildError {
    /// Parameter validation failed.
    Param(ParamError),
    /// A CONGEST simulation violated its contract or budget.
    Congest(CongestError),
    /// A registry lookup named no known construction.
    UnknownAlgorithm(String),
    /// The construction cache could not store a fresh snapshot (see
    /// [`build_cached`](crate::cache::build_cached); load-side problems
    /// degrade to a rebuild instead of erroring).
    Cache(crate::cache::SnapshotError),
    /// A worker-pool build (`BuildConfig::transport` =
    /// channel/process/socket) failed: the pool could not be spawned, a
    /// worker died or sent a
    /// corrupt frame mid-build, or shutdown was unclean. The phases fall
    /// back in-process, but the requested worker build did not happen, so
    /// the build fails loudly instead of silently reporting one.
    Worker(usnae_workers::WorkerError),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Param(e) => write!(f, "invalid parameters: {e}"),
            BuildError::Congest(e) => write!(f, "CONGEST simulation failed: {e}"),
            BuildError::UnknownAlgorithm(name) => write!(f, "unknown algorithm {name:?}"),
            BuildError::Cache(e) => write!(f, "construction cache failed: {e}"),
            BuildError::Worker(e) => write!(f, "worker transport failed: {e}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Param(e) => Some(e),
            BuildError::Congest(e) => Some(e),
            BuildError::UnknownAlgorithm(_) => None,
            BuildError::Cache(e) => Some(e),
            BuildError::Worker(e) => Some(e),
        }
    }
}

impl From<ParamError> for BuildError {
    fn from(e: ParamError) -> Self {
        BuildError::Param(e)
    }
}

impl From<CongestError> for BuildError {
    fn from(e: CongestError) -> Self {
        BuildError::Congest(e)
    }
}

impl From<usnae_workers::WorkerError> for BuildError {
    fn from(e: usnae_workers::WorkerError) -> Self {
        BuildError::Worker(e)
    }
}

/// Guard for constructions that run in-process only (the CONGEST
/// simulations and whole-graph baselines have no shardable exploration
/// fan-out): a worker transport request is rejected with a typed
/// [`ParamError::TransportUnsupported`] instead of being silently
/// ignored, so a requested worker build never quietly reports an
/// in-process one.
pub fn require_inproc(algorithm: &'static str, cfg: &BuildConfig) -> Result<(), BuildError> {
    match cfg.transport {
        usnae_workers::TransportKind::Inproc => Ok(()),
        other => Err(BuildError::Param(ParamError::TransportUnsupported {
            algorithm,
            transport: other.name(),
        })),
    }
}

/// One emulator/spanner algorithm behind the unified API.
///
/// Implemented by the five paper constructions
/// ([`constructions`](crate::api::constructions)) and, through the adapter
/// in `usnae-baselines`, by the EP01/TZ06/EN17a/EM19 lineages. Object-safe:
/// registries hand out `Box<dyn Construction>`.
pub trait Construction {
    /// Stable registry name (`"centralized"`, `"ep01"`, …).
    fn name(&self) -> &'static str;

    /// One-line human description for `usnae list` and reports.
    fn description(&self) -> &'static str;

    /// Capability sheet: which config fields matter, what the output has.
    fn supports(&self) -> Supports;

    /// The certified `(α, β)` stretch for `cfg`, when this construction
    /// certifies one (`None` for the baselines).
    fn certified_stretch(&self, cfg: &BuildConfig) -> Option<(f64, f64)>;

    /// A provable upper bound on the output's edge count on an `n`-vertex
    /// input, when one is known (`None` for expected-size-only baselines).
    fn size_bound(&self, n: usize, cfg: &BuildConfig) -> Option<f64>;

    /// Runs the construction on `g`.
    ///
    /// # Errors
    ///
    /// [`BuildError::Param`] on invalid configuration,
    /// [`BuildError::Congest`] on simulator contract violations.
    fn build(&self, g: &Graph, cfg: &BuildConfig) -> Result<BuildOutput, BuildError>;

    /// Runs the construction over a mapped (out-of-core) CSR file graph.
    ///
    /// The provided default materializes `g` onto the heap and delegates to
    /// [`Construction::build`], which is correct — and byte-identical by
    /// definition — for every algorithm. The sequential/parallel paper
    /// constructions override this to run the execution engine directly
    /// over the mapped adjacency arrays, so the input graph is never copied
    /// onto the heap; overrides must stay byte-identical to the heap path
    /// (the out-of-core conformance suite enforces this registry-wide).
    ///
    /// # Errors
    ///
    /// Same contract as [`Construction::build`].
    fn build_mapped(&self, g: &MappedGraph, cfg: &BuildConfig) -> Result<BuildOutput, BuildError> {
        self.build(&g.to_heap(), cfg)
    }
}
