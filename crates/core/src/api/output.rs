//! The unified build result: emulator + certification + trace + stats.

use crate::centralized::BuildTrace;
use crate::distributed::driver::DistributedPhaseTrace;
use crate::distributed::spanner_driver::SpannerDriverPhase;
use crate::emulator::Emulator;
pub use crate::exec::{BuildStats, CacheStatus, PhaseTiming};
use crate::fast_centralized::FastBuildTrace;
use crate::spanner::SpannerTrace;
use usnae_congest::Metrics;

/// Construction-agnostic view of one phase, distilled from any [`Trace`]
/// variant — what the anatomy experiments and progress reports consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseSummary {
    /// Phase index `i`.
    pub phase: usize,
    /// `|P_i|` at phase entry.
    pub num_clusters: usize,
    /// Superclusters formed.
    pub num_superclusters: usize,
    /// Clusters left unclustered (`|U_i|`).
    pub num_unclustered: usize,
    /// Interconnection edge insertions.
    pub interconnection_edges: usize,
    /// Superclustering edge insertions.
    pub superclustering_edges: usize,
    /// Buffer-join edge insertions (Algorithm 1 only; 0 elsewhere).
    pub buffer_join_edges: usize,
}

/// Per-phase build record, preserved per construction family.
///
/// The summaries ([`Trace::phase_summaries`]) are the generic view; the
/// `as_*` accessors recover the construction-specific detail (partitions,
/// buffer counts, ruling iterations, round charges) when a consumer needs
/// it — e.g. the per-level stretch audit needs the centralized partitions.
#[derive(Debug, Clone)]
pub enum Trace {
    /// Algorithm 1 (§2) — includes partitions and `U_i` families.
    Centralized(BuildTrace),
    /// Fast centralized simulation (§3.3).
    Fast(FastBuildTrace),
    /// Centralized §4 spanner.
    Spanner(SpannerTrace),
    /// Distributed §3 emulator (per-phase CONGEST records).
    Distributed(Vec<DistributedPhaseTrace>),
    /// Distributed §4 spanner.
    DistributedSpanner(Vec<SpannerDriverPhase>),
}

/// The per-phase records of every trace family share these field names;
/// `buffer_join_edges` exists only on Algorithm 1's records, so it is
/// passed as an accessor expression.
macro_rules! summarize_phases {
    ($phases:expr, $buffer:expr) => {
        $phases
            .iter()
            .map(|p| PhaseSummary {
                phase: p.phase,
                num_clusters: p.num_clusters,
                num_superclusters: p.num_superclusters,
                num_unclustered: p.num_unclustered,
                interconnection_edges: p.interconnection_edges,
                superclustering_edges: p.superclustering_edges,
                buffer_join_edges: $buffer(p),
            })
            .collect()
    };
}

impl Trace {
    /// The construction-agnostic per-phase view.
    pub fn phase_summaries(&self) -> Vec<PhaseSummary> {
        match self {
            Trace::Centralized(t) => {
                summarize_phases!(t.phases, |p: &crate::centralized::PhaseTrace| p
                    .buffer_join_edges)
            }
            Trace::Fast(t) => summarize_phases!(t.phases, |_| 0),
            Trace::Spanner(t) => summarize_phases!(t.phases, |_| 0),
            Trace::Distributed(phases) => summarize_phases!(phases, |_| 0),
            Trace::DistributedSpanner(phases) => summarize_phases!(phases, |_| 0),
        }
    }

    /// The Algorithm 1 trace, if this build ran Algorithm 1.
    pub fn as_centralized(&self) -> Option<&BuildTrace> {
        match self {
            Trace::Centralized(t) => Some(t),
            _ => None,
        }
    }

    /// The §3.3 trace, if this build ran the fast simulation.
    pub fn as_fast(&self) -> Option<&FastBuildTrace> {
        match self {
            Trace::Fast(t) => Some(t),
            _ => None,
        }
    }

    /// The §4 spanner trace, if this build ran the centralized spanner.
    pub fn as_spanner(&self) -> Option<&SpannerTrace> {
        match self {
            Trace::Spanner(t) => Some(t),
            _ => None,
        }
    }

    /// The §3 CONGEST phase records, if this build ran distributedly.
    pub fn as_distributed(&self) -> Option<&[DistributedPhaseTrace]> {
        match self {
            Trace::Distributed(t) => Some(t),
            _ => None,
        }
    }

    /// The distributed §4 phase records.
    pub fn as_distributed_spanner(&self) -> Option<&[SpannerDriverPhase]> {
        match self {
            Trace::DistributedSpanner(t) => Some(t),
            _ => None,
        }
    }
}

/// Execution statistics of a CONGEST-model build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CongestStats {
    /// Rounds/messages/words/congestion from the simulator.
    pub metrics: Metrics,
    /// Edge-knowledge cross-checks performed (both-endpoints property).
    pub knowledge_checked: usize,
    /// Cross-checks that failed — the §3 guarantee demands **0**.
    pub knowledge_violations: usize,
}

/// The result of any [`Construction`](crate::api::Construction) build.
#[derive(Debug)]
pub struct BuildOutput {
    /// The emulator (or spanner — then a unit-weight subgraph of `G`).
    pub emulator: Emulator,
    /// Certified stretch pair `(α, β)`, when the construction certifies one.
    pub certified: Option<(f64, f64)>,
    /// Proven edge-count upper bound for this input size, when known.
    pub size_bound: Option<f64>,
    /// Per-phase trace (present iff the config asked for `traced` and the
    /// construction supports tracing).
    pub trace: Option<Trace>,
    /// CONGEST execution stats (present for simulator-backed builds).
    pub congest: Option<CongestStats>,
    /// Wall-clock execution stats: thread count, total time, and per-phase
    /// timings for the sharded constructions.
    pub stats: BuildStats,
    /// Registry name of the construction that produced this output.
    pub algorithm: &'static str,
}

impl BuildOutput {
    /// Edge count of the built structure.
    pub fn num_edges(&self) -> usize {
        self.emulator.num_edges()
    }

    /// The certified multiplicative stretch `α` (1.0 when uncertified —
    /// every emulator here is distance-nondecreasing).
    pub fn alpha(&self) -> f64 {
        self.certified.map_or(1.0, |(a, _)| a)
    }

    /// The certified additive stretch `β` (`f64::INFINITY` when this
    /// construction certifies none).
    pub fn beta(&self) -> f64 {
        self.certified.map_or(f64::INFINITY, |(_, b)| b)
    }

    /// FNV-1a fingerprint of the exact insertion stream — every edge with
    /// its weight and full provenance, in insertion order. Two builds
    /// produce the same fingerprint iff they emitted the identical stream,
    /// which the determinism guarantee (see [`crate::api`]) promises for
    /// any two builds of the same `(graph, config)` at any thread counts.
    /// This is the quantity to key construction caches on and to diff
    /// across processes; it deliberately excludes [`BuildStats`], whose
    /// exploration counters are thread-sensitive.
    pub fn stream_fingerprint(&self) -> u64 {
        crate::emulator::stream_fingerprint(self.emulator.provenance())
    }
}
