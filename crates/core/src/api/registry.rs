//! Catalogue of the paper constructions.
//!
//! [`all`] is what algorithm-generic consumers iterate instead of
//! hardcoding lists. The baselines join in `usnae_baselines::registry::all`,
//! which chains this catalogue with the adapter-wrapped lineages; `eval`,
//! `bench`, the CLI and the parity tests all go through one of the two.

use crate::api::config::Algorithm;
use crate::api::Construction;

/// Every paper construction, in [`Algorithm::all`] order.
pub fn all() -> Vec<Box<dyn Construction>> {
    Algorithm::all().iter().map(|a| a.construction()).collect()
}

/// The paper constructions that output *emulators* (no subgraph constraint).
pub fn emulators() -> Vec<Box<dyn Construction>> {
    all()
        .into_iter()
        .filter(|c| !c.supports().subgraph)
        .collect()
}

/// The paper constructions that output subgraph *spanners*.
pub fn spanners() -> Vec<Box<dyn Construction>> {
    all()
        .into_iter()
        .filter(|c| c.supports().subgraph)
        .collect()
}

/// Looks a paper construction up by registry name.
pub fn find(name: &str) -> Option<Box<dyn Construction>> {
    Algorithm::parse(name).map(|a| a.construction())
}

/// The registry names, in catalogue order.
pub fn names() -> Vec<&'static str> {
    Algorithm::all().iter().map(|a| a.name()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_is_complete_and_distinct() {
        let names = names();
        assert_eq!(names.len(), 5);
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
        assert_eq!(all().len(), names.len());
    }

    #[test]
    fn find_round_trips() {
        for c in all() {
            let found = find(c.name()).expect("every listed name resolves");
            assert_eq!(found.name(), c.name());
        }
        assert!(find("no-such-algorithm").is_none());
    }

    #[test]
    fn emulator_spanner_split_covers_all() {
        assert_eq!(emulators().len() + spanners().len(), all().len());
        assert!(spanners().iter().all(|c| c.supports().subgraph));
        assert_eq!(spanners().len(), 2);
    }
}
