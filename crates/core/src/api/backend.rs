//! The multi-backend output seam: where a built structure *lives*.
//!
//! `BuildOutput.emulator` keeps its in-memory type — every existing
//! consumer stays untouched — but the [`OutputBackend`] trait lets an
//! output live somewhere other than this process's heap: today as a
//! [`SnapshotBackend`] over the on-disk codec (see [`crate::cache`]), as
//! a [`PartitionedBackend`] holding the insertion stream as per-shard
//! partitions (the in-memory prototype of a remote-shard backend), and by
//! design as future mmap'd or fully remote backends (the ROADMAP's
//! million-vertex direction), all behind `materialize()`.
//!
//! The contract mirrors the cache's: a backend's `stream_fingerprint`
//! identifies the exact insertion stream, so two backends holding "the
//! same" output can be compared without materializing either.

use crate::cache::{MappedSnapshot, Snapshot, SnapshotError};
use crate::emulator::{EdgeKind, EdgeProvenance, Emulator};
use crate::engine::HeldOutputs;
use crate::oracle::EmStore;
use std::cell::RefCell;
use std::path::{Path, PathBuf};
use usnae_graph::partition::PartitionPolicy;
use usnae_graph::WeightedEdge;
use usnae_workers::{MessageStats, OutputRecord, WorkerError, WorkerPool};

/// A place a built emulator/spanner can live.
///
/// Cheap metadata (`num_vertices`, `num_edges`, `stream_fingerprint`) must
/// be available without materializing; `materialize` produces the live
/// in-memory [`Emulator`] on demand.
pub trait OutputBackend {
    /// Short backend tag for reports (`"heap"`, `"snapshot"`).
    fn kind(&self) -> &'static str;

    /// Registry name of the construction that produced the output.
    fn algorithm(&self) -> &str;

    /// Vertex count, without materializing.
    fn num_vertices(&self) -> usize;

    /// Distinct-edge count, without materializing.
    fn num_edges(&self) -> usize;

    /// Fingerprint of the exact insertion stream (the identity of the
    /// output; see [`crate::emulator::stream_fingerprint`]).
    fn stream_fingerprint(&self) -> u64;

    /// Certified stretch pair `(α, β)` of the stored output, when the
    /// producing construction certified one — this is what lets a
    /// [`QueryEngine`](crate::oracle::QueryEngine) opened over a backend
    /// serve *certified* answers without re-running the construction.
    fn certified(&self) -> Option<(f64, f64)> {
        None
    }

    /// Produces the live in-memory emulator.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when a persistent backend cannot be read back
    /// (the heap backend is infallible).
    fn materialize(&self) -> Result<Emulator, SnapshotError>;

    /// Produces the store a [`QueryEngine`](crate::oracle::QueryEngine)
    /// holds for answering queries. The default materializes onto the heap
    /// — correct for every backend. Out-of-core backends
    /// ([`MappedBackend`]) override this to serve the structure straight
    /// from the mapped snapshot file, so opening an engine never copies the
    /// emulator into process memory; answers are byte-identical either way
    /// (distances are unique functions of the stored structure).
    ///
    /// # Errors
    ///
    /// Same contract as [`OutputBackend::materialize`].
    fn serve(&self) -> Result<EmStore, SnapshotError> {
        Ok(EmStore::Heap(self.materialize()?))
    }
}

/// The default backend: the output already lives on this process's heap.
#[derive(Debug, Clone)]
pub struct HeapBackend {
    emulator: Emulator,
    algorithm: String,
    fingerprint: u64,
    certified: Option<(f64, f64)>,
}

impl HeapBackend {
    /// Wraps a live emulator (fingerprint computed once, up front).
    pub fn new(emulator: Emulator, algorithm: impl Into<String>) -> Self {
        let fingerprint = crate::emulator::stream_fingerprint(emulator.provenance());
        HeapBackend {
            emulator,
            algorithm: algorithm.into(),
            fingerprint,
            certified: None,
        }
    }

    /// Wraps a build result, carrying its certified stretch pair so an
    /// engine opened over this backend serves certified answers.
    pub fn from_output(out: &crate::api::BuildOutput) -> Self {
        HeapBackend::new(out.emulator.clone(), out.algorithm).with_certified(out.certified)
    }

    /// Attaches (or clears) the certified `(α, β)` pair.
    pub fn with_certified(mut self, certified: Option<(f64, f64)>) -> Self {
        self.certified = certified;
        self
    }

    /// The wrapped emulator, by reference (no materialization cost).
    pub fn emulator(&self) -> &Emulator {
        &self.emulator
    }
}

impl OutputBackend for HeapBackend {
    fn kind(&self) -> &'static str {
        "heap"
    }

    fn algorithm(&self) -> &str {
        &self.algorithm
    }

    fn num_vertices(&self) -> usize {
        self.emulator.num_vertices()
    }

    fn num_edges(&self) -> usize {
        self.emulator.num_edges()
    }

    fn stream_fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn certified(&self) -> Option<(f64, f64)> {
        self.certified
    }

    fn materialize(&self) -> Result<Emulator, SnapshotError> {
        Ok(self.emulator.clone())
    }
}

/// A backend over one on-disk snapshot file: metadata is held from the
/// (verified) decode at open time; `materialize` re-reads and re-verifies
/// the file, so a backend held across processes never trusts stale bytes.
#[derive(Debug, Clone)]
pub struct SnapshotBackend {
    path: PathBuf,
    algorithm: String,
    num_vertices: usize,
    num_edges: usize,
    fingerprint: u64,
    certified: Option<(f64, f64)>,
}

impl SnapshotBackend {
    /// Opens and fully verifies a snapshot file, keeping only its metadata
    /// (the decoded records are dropped — this is the low-memory handle).
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] from the decode.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, SnapshotError> {
        let path = path.into();
        let snap = Snapshot::decode(&std::fs::read(&path)?)?;
        // Distinct-edge count without materializing the adjacency
        // structure: the records are already canonicalized (u <= v), so
        // sort + dedup on the pairs is the whole computation.
        let mut pairs: Vec<(usize, usize)> = snap.records.iter().map(|(e, _)| (e.u, e.v)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        let num_edges = pairs.len();
        Ok(SnapshotBackend {
            algorithm: snap.key.algorithm.clone(),
            num_vertices: snap.num_vertices,
            num_edges,
            fingerprint: snap.stream_fingerprint,
            certified: snap.certified,
            path,
        })
    }

    /// The snapshot file this backend reads from.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl OutputBackend for SnapshotBackend {
    fn kind(&self) -> &'static str {
        "snapshot"
    }

    fn algorithm(&self) -> &str {
        &self.algorithm
    }

    fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn stream_fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn certified(&self) -> Option<(f64, f64)> {
        self.certified
    }

    fn materialize(&self) -> Result<Emulator, SnapshotError> {
        let snap = Snapshot::decode(&std::fs::read(&self.path)?)?;
        if snap.stream_fingerprint != self.fingerprint {
            return Err(SnapshotError::FingerprintMismatch {
                stored: self.fingerprint,
                recomputed: snap.stream_fingerprint,
            });
        }
        Ok(snap.rebuild_emulator())
    }
}

/// The out-of-core backend: a [`MappedSnapshot`] handle over a codec-v4
/// snapshot file. Metadata comes from the section directory at open time
/// (the record stream is never decoded); `serve()` hands a
/// [`QueryEngine`](crate::oracle::QueryEngine) the mapped emulator CSR
/// section directly, so query serving holds no heap copy of the
/// structure. `materialize()` still works — it fully decodes the file —
/// for consumers that genuinely need a live [`Emulator`].
#[derive(Debug)]
pub struct MappedBackend {
    snap: MappedSnapshot,
}

impl MappedBackend {
    /// Maps and structurally validates a codec-v4 snapshot file.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] from [`MappedSnapshot::open`] — including
    /// [`SnapshotError::UnsupportedVersion`] for pre-v4 files, which have
    /// no section directory to serve from (decode them and re-encode, or
    /// use [`SnapshotBackend`]).
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, SnapshotError> {
        Ok(MappedBackend {
            snap: MappedSnapshot::open(path.into())?,
        })
    }

    /// The underlying mapped snapshot handle.
    pub fn snapshot(&self) -> &MappedSnapshot {
        &self.snap
    }

    /// The snapshot file this backend serves from.
    pub fn path(&self) -> &Path {
        self.snap.path()
    }
}

impl OutputBackend for MappedBackend {
    fn kind(&self) -> &'static str {
        "mapped"
    }

    fn algorithm(&self) -> &str {
        &self.snap.key().algorithm
    }

    fn num_vertices(&self) -> usize {
        self.snap.num_vertices()
    }

    fn num_edges(&self) -> usize {
        self.snap.num_edges()
    }

    fn stream_fingerprint(&self) -> u64 {
        self.snap.stream_fingerprint()
    }

    fn certified(&self) -> Option<(f64, f64)> {
        self.snap.certified()
    }

    fn materialize(&self) -> Result<Emulator, SnapshotError> {
        let full = Snapshot::decode(&std::fs::read(self.snap.path())?)?;
        if full.stream_fingerprint != self.snap.stream_fingerprint() {
            return Err(SnapshotError::FingerprintMismatch {
                stored: self.snap.stream_fingerprint(),
                recomputed: full.stream_fingerprint,
            });
        }
        Ok(full.rebuild_emulator())
    }

    fn serve(&self) -> Result<EmStore, SnapshotError> {
        Ok(EmStore::Mapped(self.snap.emulator()?))
    }
}

/// A backend that holds a built output's insertion stream partitioned
/// into per-shard lists by the owning shard of each edge's lower
/// endpoint — the same contiguous-range ownership [`ShardedCsr`]
/// (`usnae_graph::partition`) uses for the input graph. This is the
/// in-memory prototype of a remote-shard backend: each shard's records
/// are independently addressable (and could live in another process),
/// while `materialize()` merges them back in original insertion order,
/// reproducing the exact stream — same fingerprint as the heap backend.
#[derive(Debug, Clone)]
pub struct PartitionedBackend {
    algorithm: String,
    num_vertices: usize,
    num_edges: usize,
    fingerprint: u64,
    certified: Option<(f64, f64)>,
    policy: PartitionPolicy,
    /// Per shard: `(original stream index, record)`, index-ascending.
    shards: Vec<Vec<(usize, (WeightedEdge, EdgeProvenance))>>,
}

impl PartitionedBackend {
    /// Partitions `out`'s insertion stream into `shards` per-shard lists.
    /// Ownership boundaries are computed over the *output* structure
    /// (degree-balanced policies weight by emulator degree), so a hub-heavy
    /// emulator does not overload shard 0.
    pub fn from_output(
        out: &crate::api::BuildOutput,
        policy: PartitionPolicy,
        shards: usize,
    ) -> Self {
        let n = out.emulator.num_vertices();
        let bounds = usnae_graph::partition::weighted_boundaries(
            n,
            |v| out.emulator.graph().degree(v),
            policy,
            shards,
        );
        let owner = |v: usize| -> usize { bounds.partition_point(|&b| b <= v).saturating_sub(1) };
        let mut parts: Vec<Vec<(usize, (WeightedEdge, EdgeProvenance))>> =
            vec![Vec::new(); bounds.len() - 1];
        for (idx, rec) in out.emulator.provenance().iter().enumerate() {
            parts[owner(rec.0.u)].push((idx, *rec));
        }
        PartitionedBackend {
            algorithm: out.algorithm.to_string(),
            num_vertices: n,
            num_edges: out.num_edges(),
            fingerprint: out.stream_fingerprint(),
            certified: out.certified,
            policy,
            shards: parts,
        }
    }

    /// The policy the stream was partitioned under.
    pub fn policy(&self) -> PartitionPolicy {
        self.policy
    }

    /// Number of stream shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// One shard's records: `(original stream index, record)`, ascending.
    pub fn shard_records(&self, shard: usize) -> &[(usize, (WeightedEdge, EdgeProvenance))] {
        &self.shards[shard]
    }
}

impl OutputBackend for PartitionedBackend {
    fn kind(&self) -> &'static str {
        "partitioned"
    }

    fn algorithm(&self) -> &str {
        &self.algorithm
    }

    fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn stream_fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn certified(&self) -> Option<(f64, f64)> {
        self.certified
    }

    fn materialize(&self) -> Result<Emulator, SnapshotError> {
        // Merge the per-shard lists back into insertion order. Each list
        // is index-ascending, so this is a k-way merge; the recomputed
        // fingerprint proves the merge reproduced the original stream.
        let mut records: Vec<(usize, (WeightedEdge, EdgeProvenance))> =
            self.shards.iter().flatten().cloned().collect();
        records.sort_unstable_by_key(|&(idx, _)| idx);
        let merged: Vec<(WeightedEdge, EdgeProvenance)> =
            records.into_iter().map(|(_, r)| r).collect();
        let recomputed = crate::emulator::stream_fingerprint(&merged);
        if recomputed != self.fingerprint {
            return Err(SnapshotError::FingerprintMismatch {
                stored: self.fingerprint,
                recomputed,
            });
        }
        Ok(Emulator::from_provenance(self.num_vertices, merged))
    }
}

/// Records fetched per worker per exchange when a
/// [`RemotePartitionedBackend`] streams its partitions back.
pub const REMOTE_FETCH_CHUNK: usize = 4096;

/// The remote sibling of [`PartitionedBackend`]: the output partitions
/// live in the *workers* (shipped by `Engine::finish_retaining` at round
/// end), and this backend holds only metadata plus the live
/// [`WorkerPool`]. `materialize()` streams every partition back lazily in
/// [`REMOTE_FETCH_CHUNK`]-sized slices, merges by original stream index,
/// re-verifies the merge by stream fingerprint — exactly the
/// [`PartitionedBackend`] contract, but over a real transport — and shuts
/// the pool down, keeping the merged records so repeat materializes need
/// no workers.
pub struct RemotePartitionedBackend {
    algorithm: String,
    num_vertices: usize,
    num_edges: usize,
    fingerprint: u64,
    certified: Option<(f64, f64)>,
    count: usize,
    pool: RefCell<Option<WorkerPool>>,
    merged: RefCell<Option<Vec<(WeightedEdge, EdgeProvenance)>>>,
    final_stats: RefCell<Option<MessageStats>>,
    worker_error: RefCell<Option<WorkerError>>,
}

impl std::fmt::Debug for RemotePartitionedBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemotePartitionedBackend")
            .field("algorithm", &self.algorithm)
            .field("num_vertices", &self.num_vertices)
            .field("num_edges", &self.num_edges)
            .field("fingerprint", &self.fingerprint)
            .field("count", &self.count)
            .finish_non_exhaustive()
    }
}

impl RemotePartitionedBackend {
    /// Adopts the worker-held partitions of `out`'s build: metadata from
    /// the finished output, records from the pool inside `held`.
    pub fn from_held(out: &crate::api::BuildOutput, held: HeldOutputs) -> Self {
        RemotePartitionedBackend {
            algorithm: out.algorithm.to_string(),
            num_vertices: out.emulator.num_vertices(),
            num_edges: out.num_edges(),
            fingerprint: out.stream_fingerprint(),
            certified: out.certified,
            count: held.count,
            pool: RefCell::new(Some(held.pool)),
            merged: RefCell::new(None),
            final_stats: RefCell::new(None),
            worker_error: RefCell::new(None),
        }
    }

    /// Total records across all worker-held partitions.
    pub fn num_records(&self) -> usize {
        self.count
    }

    /// The pool's final [`MessageStats`] — retain + fetch traffic and all
    /// build rounds — available once `materialize()` has drained the
    /// workers and shut the pool down.
    pub fn final_stats(&self) -> Option<MessageStats> {
        self.final_stats.borrow().clone()
    }

    /// Takes the typed [`WorkerError`] behind the last failed
    /// `materialize()`, when the failure was the transport's (a dead
    /// worker mid-fetch) rather than a bad merge.
    pub fn take_worker_error(&self) -> Option<WorkerError> {
        self.worker_error.borrow_mut().take()
    }

    /// Streams the partitions back, merges them, and shuts the pool down.
    fn fetch_and_merge(&self) -> Result<(), SnapshotError> {
        let Some(mut pool) = self.pool.borrow_mut().take() else {
            return Err(SnapshotError::Corrupt {
                reason: "remote partitions already consumed by a failed fetch".into(),
            });
        };
        let parts = match pool.fetch_retained(REMOTE_FETCH_CHUNK) {
            Ok(parts) => parts,
            Err(e) => {
                // The pool drops here: kill-on-drop teardown, no hang.
                let reason = format!("fetching worker-held partitions failed: {e}");
                *self.worker_error.borrow_mut() = Some(e);
                return Err(SnapshotError::Corrupt { reason });
            }
        };
        let stats = match pool.shutdown() {
            Ok(stats) => stats,
            Err(e) => {
                let reason = format!("worker shutdown after partition fetch failed: {e}");
                *self.worker_error.borrow_mut() = Some(e);
                return Err(SnapshotError::Corrupt { reason });
            }
        };
        let mut records: Vec<OutputRecord> = parts.into_iter().flatten().collect();
        records.sort_unstable_by_key(|r| r.index);
        if records.len() != self.count {
            return Err(SnapshotError::Corrupt {
                reason: format!(
                    "workers held {} records, the build shipped {}",
                    records.len(),
                    self.count
                ),
            });
        }
        let mut merged = Vec::with_capacity(records.len());
        for (i, rec) in records.into_iter().enumerate() {
            if rec.index != i as u64 {
                return Err(SnapshotError::Corrupt {
                    reason: format!("merged stream skips from index {i} to {}", rec.index),
                });
            }
            merged.push(decode_record(&rec, self.num_vertices)?);
        }
        *self.merged.borrow_mut() = Some(merged);
        *self.final_stats.borrow_mut() = Some(stats);
        Ok(())
    }
}

/// One wire record back to `(edge, provenance)`, with the same structural
/// checks the snapshot codec applies (endpoint range, known edge-kind).
fn decode_record(
    rec: &OutputRecord,
    num_vertices: usize,
) -> Result<(WeightedEdge, EdgeProvenance), SnapshotError> {
    let vertex = |x: u64| -> Result<usize, SnapshotError> {
        usize::try_from(x)
            .ok()
            .filter(|&v| v < num_vertices)
            .ok_or_else(|| SnapshotError::Corrupt {
                reason: format!("record endpoint {x} out of range (n = {num_vertices})"),
            })
    };
    let kind = EdgeKind::from_code(rec.kind).ok_or_else(|| SnapshotError::Corrupt {
        reason: format!("unknown edge-kind code {}", rec.kind),
    })?;
    Ok((
        WeightedEdge {
            u: vertex(rec.u)?,
            v: vertex(rec.v)?,
            weight: rec.weight,
        },
        EdgeProvenance {
            phase: usize::try_from(rec.phase).map_err(|_| SnapshotError::Corrupt {
                reason: format!("record phase {} overflows", rec.phase),
            })?,
            kind,
            charged_to: vertex(rec.charged_to)?,
        },
    ))
}

impl OutputBackend for RemotePartitionedBackend {
    fn kind(&self) -> &'static str {
        "remote-partitioned"
    }

    fn algorithm(&self) -> &str {
        &self.algorithm
    }

    fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn stream_fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn certified(&self) -> Option<(f64, f64)> {
        self.certified
    }

    fn materialize(&self) -> Result<Emulator, SnapshotError> {
        if self.merged.borrow().is_none() {
            self.fetch_and_merge()?;
        }
        let records = self
            .merged
            .borrow()
            .as_ref()
            .expect("fetch_and_merge fills the cache on success")
            .clone();
        let recomputed = crate::emulator::stream_fingerprint(&records);
        if recomputed != self.fingerprint {
            return Err(SnapshotError::FingerprintMismatch {
                stored: self.fingerprint,
                recomputed,
            });
        }
        Ok(Emulator::from_provenance(self.num_vertices, records))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{Algorithm, BuildConfig};
    use crate::cache::CacheKey;
    use usnae_graph::generators;

    #[test]
    fn heap_and_snapshot_backends_agree() {
        let g = generators::gnp_connected(50, 0.12, 4).unwrap();
        let cfg = BuildConfig::default();
        let c = Algorithm::Centralized.construction();
        let out = c.build(&g, &cfg).unwrap();

        let dir = std::env::temp_dir().join(format!("usnae-backend-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("entry.usnae");
        let key = CacheKey::new(&g, c.name(), &cfg);
        std::fs::write(&path, Snapshot::from_output(key, &out).encode()).unwrap();

        let heap = HeapBackend::from_output(&out);
        let disk = SnapshotBackend::open(&path).unwrap();
        for b in [&heap as &dyn OutputBackend, &disk] {
            assert_eq!(b.algorithm(), "centralized");
            assert_eq!(b.num_vertices(), out.emulator.num_vertices());
            assert_eq!(b.num_edges(), out.num_edges());
            assert_eq!(b.stream_fingerprint(), out.stream_fingerprint());
            assert_eq!(b.certified(), out.certified, "{}", b.kind());
            let live = b.materialize().unwrap();
            assert_eq!(live.provenance(), out.emulator.provenance(), "{}", b.kind());
        }
        assert!(out.certified.is_some(), "centralized certifies a pair");
        assert_eq!(heap.kind(), "heap");
        assert_eq!(disk.kind(), "snapshot");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partitioned_backend_merges_back_to_the_exact_stream() {
        let g = generators::gnp_connected(80, 0.08, 7).unwrap();
        let cfg = BuildConfig::default();
        for algo in [Algorithm::Centralized, Algorithm::Spanner] {
            let c = algo.construction();
            let out = c.build(&g, &cfg).unwrap();
            let heap = HeapBackend::new(out.emulator.clone(), c.name());
            for policy in PartitionPolicy::all() {
                for shards in [1usize, 2, 4, 7] {
                    let part = PartitionedBackend::from_output(&out, policy, shards);
                    assert_eq!(part.kind(), "partitioned");
                    assert_eq!(part.num_shards(), shards.min(g.num_vertices()));
                    assert_eq!(part.policy(), policy);
                    assert_eq!(part.algorithm(), c.name());
                    assert_eq!(part.num_vertices(), heap.num_vertices());
                    assert_eq!(part.num_edges(), heap.num_edges());
                    assert_eq!(part.stream_fingerprint(), heap.stream_fingerprint());
                    assert_eq!(part.certified(), out.certified);
                    // Every record lands in exactly one shard, ascending.
                    let total: usize = (0..part.num_shards())
                        .map(|s| part.shard_records(s).len())
                        .sum();
                    assert_eq!(total, out.emulator.provenance().len());
                    for s in 0..part.num_shards() {
                        assert!(part.shard_records(s).windows(2).all(|w| w[0].0 < w[1].0));
                    }
                    // The merge reproduces the original insertion stream.
                    let live = part.materialize().unwrap();
                    assert_eq!(
                        live.provenance(),
                        out.emulator.provenance(),
                        "{policy} shards={shards}"
                    );
                }
            }
        }
    }

    #[test]
    fn mapped_backend_agrees_with_heap_and_serves_without_materializing() {
        let g = generators::gnp_connected(60, 0.1, 11).unwrap();
        let cfg = BuildConfig::default();
        let c = Algorithm::Centralized.construction();
        let out = c.build(&g, &cfg).unwrap();

        let dir = std::env::temp_dir().join(format!("usnae-backend-map-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("entry.usnae");
        let key = CacheKey::new(&g, c.name(), &cfg);
        std::fs::write(&path, Snapshot::from_output(key, &out).encode()).unwrap();

        let heap = HeapBackend::from_output(&out);
        let mapped = MappedBackend::open(&path).unwrap();
        assert_eq!(mapped.kind(), "mapped");
        assert_eq!(mapped.algorithm(), heap.algorithm());
        assert_eq!(mapped.num_vertices(), heap.num_vertices());
        assert_eq!(mapped.num_edges(), heap.num_edges());
        assert_eq!(mapped.stream_fingerprint(), heap.stream_fingerprint());
        assert_eq!(mapped.certified(), heap.certified());
        let live = mapped.materialize().unwrap();
        assert_eq!(live.provenance(), out.emulator.provenance());

        // Serving: the engine holds the mapped CSR, not a heap emulator,
        // and answers are byte-identical to the heap-backed engine's.
        let heap_engine = crate::oracle::QueryEngine::open(&heap).unwrap();
        let map_engine = crate::oracle::QueryEngine::open(&mapped).unwrap();
        assert!(heap_engine.emulator().is_some());
        assert!(map_engine.emulator().is_none(), "no heap copy when mapped");
        assert_eq!(map_engine.num_vertices(), heap_engine.num_vertices());
        assert_eq!(map_engine.num_edges(), heap_engine.num_edges());
        for (u, v) in usnae_graph::distance::sample_pairs(&g, 30, 3) {
            assert_eq!(map_engine.distance(u, v), heap_engine.distance(u, v));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_backend_rejects_rot_on_materialize() {
        let g = generators::grid2d(5, 5).unwrap();
        let cfg = BuildConfig::default();
        let c = Algorithm::Centralized.construction();
        let out = c.build(&g, &cfg).unwrap();

        let dir = std::env::temp_dir().join(format!("usnae-backend-rot-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("entry.usnae");
        let key = CacheKey::new(&g, c.name(), &cfg);
        std::fs::write(&path, Snapshot::from_output(key, &out).encode()).unwrap();

        let backend = SnapshotBackend::open(&path).unwrap();
        // Rot the file after open: the handle's metadata is stale now.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert!(backend.materialize().is_err(), "rot must not materialize");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
