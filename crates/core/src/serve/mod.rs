//! Always-on build-and-query daemon over a shared evicting cache.
//!
//! `usnae serve` keeps one long-running process warm so repeated builds
//! and query batches stop paying process start-up, graph re-parse, and
//! cold construction costs. The daemon listens on a local Unix socket
//! and speaks the framed [`proto`] vocabulary (the same
//! magic/version/checksum framing discipline as the worker transport,
//! under its own `USNAESRV` magic):
//!
//! ```text
//!            clients (usnae run/query --connect, tests, bench)
//!                 │ framed requests over a Unix socket
//!                 ▼
//!  ┌─────────────────────────────── Server ───────────────────────────┐
//!  │ accept loop → one handler thread per connection                  │
//!  │                                                                  │
//!  │  Build/Query ──► warm? ──hit──► MappedSnapshot (zero-copy) ──►   │
//!  │      │           (EvictingCache.open_mapped)            reply    │
//!  │      └─miss─► bounded job queue ──► build worker pool            │
//!  │               (cap → typed Busy)    └─► build_cached ─► publish  │
//!  │                                          (atomic tempfile+rename)│
//!  │  Query answers: one shared QueryEngine per mapped snapshot,      │
//!  │                  reused across connections (engine_reuses stat)  │
//!  │  Stats: queue depth, cache counters, bytes resident, job records │
//!  └──────────────────────────────────────────────────────────────────┘
//! ```
//!
//! Three design rules:
//!
//! * **Warm hits never queue.** A job whose snapshot is resident is
//!   answered directly from the connection thread via a zero-copy
//!   [`MappedSnapshot`](crate::cache::MappedSnapshot) open — admission
//!   control only gates *construction* work.
//! * **Admission is typed.** The build queue is bounded
//!   ([`ServeConfig::queue_cap`]); a full queue answers
//!   [`ServeResponse::Busy`], never blocks the socket.
//! * **The daemon is algorithm-agnostic.** Constructions are looked up
//!   through an injected [`Resolver`], so the binary that embeds the
//!   daemon decides the catalogue (the CLI injects the full 9-algorithm
//!   registry; [`paper_resolver`] covers the in-crate constructions).
//!
//! Determinism carries through: a daemon-built snapshot is the same
//! bytes as a CLI-built one (same [`CacheKey`](crate::cache::CacheKey),
//! same codec), so stream
//! fingerprints reported by [`BuiltMeta`] are byte-identity proofs
//! against any local build. Operator guidance (budget sizing, reading
//! `stats`) lives in `docs/SERVING.md`; the wire grammar in
//! `docs/PROTOCOL.md`.

pub mod proto;

pub use proto::{
    BuiltMeta, ErrorCode, JobCache, JobRecord, JobSpec, ServeError, ServeRequest, ServeResponse,
    ServiceStats, MAGIC, VERSION,
};

use std::sync::Arc;

use crate::api::{Algorithm, Construction};

/// How an embedding binary tells the daemon which constructions exist:
/// registry-name → construction, or `None` for an unknown name.
pub type Resolver = Arc<dyn Fn(&str) -> Option<Box<dyn Construction>> + Send + Sync>;

/// The in-crate resolver: exactly the paper's constructions
/// ([`Algorithm`] names). The CLI injects the full baseline registry
/// instead; this is the default for embedders that only need the
/// paper's algorithms.
pub fn paper_resolver() -> Resolver {
    Arc::new(|name| Algorithm::parse(name).map(|a| a.construction()))
}

#[cfg(unix)]
pub use daemon::{Client, QueryAnswers, ServeConfig, Server};

#[cfg(unix)]
mod daemon {
    use std::collections::{HashMap, VecDeque};
    use std::io::BufReader;
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Instant;

    use usnae_graph::{io as gio, Graph};

    use super::proto::{
        read_request, read_response, write_request, write_response, BuiltMeta, ErrorCode, JobCache,
        JobRecord, JobSpec, ServeError, ServeRequest, ServeResponse, ServiceStats, VERSION,
    };
    use super::Resolver;
    use crate::api::{BuildConfig, MappedBackend};
    use crate::cache::{CacheKey, EvictingCache, MappedSnapshot};
    use crate::exec::CacheStatus;
    use crate::oracle::QueryEngine;

    /// Daemon tuning knobs.
    #[derive(Debug, Clone)]
    pub struct ServeConfig {
        /// Unix socket path the daemon listens on (created at bind,
        /// unlinked at exit; a stale file from a dead daemon is
        /// replaced).
        pub socket: PathBuf,
        /// Directory of the shared snapshot cache.
        pub cache_dir: PathBuf,
        /// Cache byte budget (`None` = unbounded; see
        /// [`EvictingCache`]).
        pub budget: Option<u64>,
        /// Build worker threads draining the job queue.
        pub workers: usize,
        /// Bounded job-queue capacity; a cold build arriving when
        /// `queue_cap` jobs are already waiting is refused with a typed
        /// `Busy`. Warm hits bypass the queue and are never refused.
        pub queue_cap: usize,
        /// How many completed jobs the `stats` response remembers.
        pub recent_cap: usize,
    }

    impl ServeConfig {
        /// A config with the default pool shape (2 workers, queue cap 8,
        /// 16 remembered jobs, unbounded cache).
        pub fn new(socket: impl Into<PathBuf>, cache_dir: impl Into<PathBuf>) -> Self {
            ServeConfig {
                socket: socket.into(),
                cache_dir: cache_dir.into(),
                budget: None,
                workers: 2,
                queue_cap: 8,
                recent_cap: 16,
            }
        }
    }

    type JobResult = Result<(BuiltMeta, Vec<(u64, u64, u64)>), (ErrorCode, String)>;

    /// A validated job ready to run: the resolved construction, the
    /// (memoized) graph, the decoded config, and the cache key they
    /// hash to.
    type PreparedJob = (
        Box<dyn crate::api::Construction>,
        Arc<Graph>,
        BuildConfig,
        CacheKey,
    );

    /// What `ensure_built` hands the request handler: the built
    /// metadata plus streamed phase triples, or the typed response
    /// (`Busy` / `Error`) to send in place of an answer.
    type BuildOutcome = Result<(BuiltMeta, Vec<(u64, u64, u64)>), ServeResponse>;

    /// Completion slot a connection thread waits on after enqueueing.
    struct Ticket {
        slot: Mutex<Option<JobResult>>,
        done: Condvar,
    }

    impl Ticket {
        fn new() -> Arc<Ticket> {
            Arc::new(Ticket {
                slot: Mutex::new(None),
                done: Condvar::new(),
            })
        }

        fn fill(&self, result: JobResult) {
            *self.slot.lock().expect("ticket lock") = Some(result);
            self.done.notify_all();
        }

        fn wait(&self) -> JobResult {
            let mut slot = self.slot.lock().expect("ticket lock");
            loop {
                if let Some(result) = slot.take() {
                    return result;
                }
                slot = self.done.wait(slot).expect("ticket lock");
            }
        }
    }

    struct QueuedJob {
        spec: JobSpec,
        ticket: Arc<Ticket>,
    }

    /// State shared by the accept loop, connection threads, and workers.
    struct Shared {
        cfg: ServeConfig,
        resolver: Resolver,
        cache: EvictingCache,
        queue: Mutex<VecDeque<QueuedJob>>,
        work_ready: Condvar,
        graphs: Mutex<HashMap<String, Arc<Graph>>>,
        /// Daemon-wide query engines, one per `(snapshot, landmarks)`
        /// pair: every connection querying the same built snapshot locks
        /// the same engine instead of mapping a duplicate per
        /// connection. `QueryEngine` is `Send` but not `Sync`, so each
        /// shared engine sits behind its own `Mutex`.
        #[allow(clippy::type_complexity)]
        engines: Mutex<HashMap<(String, u64), Arc<Mutex<QueryEngine>>>>,
        engine_reuses: AtomicU64,
        jobs_done: AtomicU64,
        jobs_rejected: AtomicU64,
        recent: Mutex<VecDeque<JobRecord>>,
        stop: AtomicBool,
    }

    impl Shared {
        /// Loads (or reuses) the graph behind a job's graph reference.
        fn graph(&self, path: &str) -> Result<Arc<Graph>, (ErrorCode, String)> {
            if let Some(g) = self.graphs.lock().expect("graph memo lock").get(path) {
                return Ok(Arc::clone(g));
            }
            let file = std::fs::File::open(path).map_err(|e| {
                (
                    ErrorCode::GraphUnavailable,
                    format!("cannot open graph '{path}': {e}"),
                )
            })?;
            let g = gio::read_edge_list(BufReader::new(file), 0).map_err(|e| {
                (
                    ErrorCode::GraphUnavailable,
                    format!("cannot parse graph '{path}': {e}"),
                )
            })?;
            let g = Arc::new(g);
            self.graphs
                .lock()
                .expect("graph memo lock")
                .entry(path.to_string())
                .or_insert_with(|| Arc::clone(&g));
            Ok(g)
        }

        /// Validates a job and computes its cache key.
        fn prepare(&self, spec: &JobSpec) -> Result<PreparedJob, (ErrorCode, String)> {
            let cfg = spec.to_config();
            cfg.validate()
                .map_err(|e| (ErrorCode::BadRequest, e.to_string()))?;
            let construction = (self.resolver)(&spec.algorithm).ok_or_else(|| {
                (
                    ErrorCode::BadRequest,
                    format!("unknown algorithm '{}'", spec.algorithm),
                )
            })?;
            let g = self.graph(&spec.graph)?;
            let key = CacheKey::new(g.as_ref(), construction.name(), &cfg);
            Ok((construction, g, cfg, key))
        }

        /// Records a completed job for the `stats` window.
        fn record(&self, record: JobRecord) {
            self.jobs_done.fetch_add(1, Ordering::Relaxed);
            let mut recent = self.recent.lock().expect("recent lock");
            while recent.len() >= self.cfg.recent_cap.max(1) {
                recent.pop_front();
            }
            recent.push_back(record);
        }

        fn warm_meta(key: &CacheKey, mapped: &MappedSnapshot, t0: Instant) -> BuiltMeta {
            BuiltMeta {
                algorithm: key.algorithm.clone(),
                stream_fingerprint: mapped.stream_fingerprint(),
                num_vertices: mapped.num_vertices() as u64,
                num_edges: mapped.num_edges() as u64,
                cache: JobCache::Warm,
                total_micros: t0.elapsed().as_micros() as u64,
            }
        }

        /// The worker-side job body: re-checks warmth (another worker
        /// may have published the snapshot while this job queued), then
        /// builds read-through and publishes.
        fn run_job(&self, spec: &JobSpec) -> JobResult {
            let t0 = Instant::now();
            let (construction, g, cfg, key) = self.prepare(spec)?;
            if let Ok(Some(mapped)) = self.cache.open_mapped(&key) {
                return Ok((Self::warm_meta(&key, &mapped, t0), Vec::new()));
            }
            let out = self
                .cache
                .build_cached(construction.as_ref(), g.as_ref(), &cfg)
                .map_err(|e| (ErrorCode::BuildFailed, e.to_string()))?;
            let cache = if out.stats.cache == CacheStatus::Hit {
                JobCache::Warm
            } else {
                JobCache::Cold
            };
            let meta = BuiltMeta {
                algorithm: spec.algorithm.clone(),
                stream_fingerprint: out.stream_fingerprint(),
                num_vertices: out.emulator.num_vertices() as u64,
                num_edges: out.num_edges() as u64,
                cache,
                total_micros: t0.elapsed().as_micros() as u64,
            };
            Ok((meta, JobRecord::wire_phases(&out.stats.phases)))
        }

        /// Admission control: queue the job or refuse with `Busy`.
        #[allow(clippy::result_large_err)] // refusal path, written at most once per job
        fn enqueue(&self, spec: JobSpec) -> Result<Arc<Ticket>, ServeResponse> {
            let mut queue = self.queue.lock().expect("job queue lock");
            if queue.len() >= self.cfg.queue_cap {
                drop(queue);
                self.jobs_rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServeResponse::Busy {
                    queue_cap: self.cfg.queue_cap as u64,
                });
            }
            let ticket = Ticket::new();
            queue.push_back(QueuedJob {
                spec,
                ticket: Arc::clone(&ticket),
            });
            self.work_ready.notify_one();
            Ok(ticket)
        }

        /// The full build path shared by `Build` and `Query`: warm fast
        /// path on the connection thread, else queue + wait. `accepted`
        /// is called with the queue depth right after admission (the
        /// `Build` handler streams it; `Query` ignores it).
        fn ensure_built(
            &self,
            spec: &JobSpec,
            mut accepted: impl FnMut(u64) -> Result<(), ServeError>,
        ) -> Result<BuildOutcome, ServeError> {
            let t0 = Instant::now();
            let prepared = match self.prepare(spec) {
                Ok(p) => p,
                Err((code, message)) => {
                    return Ok(Err(ServeResponse::Error { code, message }));
                }
            };
            let (_, _, _, key) = prepared;
            if let Ok(Some(mapped)) = self.cache.open_mapped(&key) {
                let meta = Self::warm_meta(&key, &mapped, t0);
                self.record(JobRecord {
                    algorithm: meta.algorithm.clone(),
                    stream_fingerprint: meta.stream_fingerprint,
                    cache: JobCache::Warm,
                    total_micros: meta.total_micros,
                    phases: Vec::new(),
                });
                return Ok(Ok((meta, Vec::new())));
            }
            let ticket = match self.enqueue(spec.clone()) {
                Ok(t) => t,
                Err(busy) => return Ok(Err(busy)),
            };
            accepted(self.queue.lock().expect("job queue lock").len() as u64)?;
            match ticket.wait() {
                Ok((meta, phases)) => {
                    self.record(JobRecord {
                        algorithm: meta.algorithm.clone(),
                        stream_fingerprint: meta.stream_fingerprint,
                        cache: meta.cache,
                        total_micros: meta.total_micros,
                        phases: phases.clone(),
                    });
                    Ok(Ok((meta, phases)))
                }
                Err((code, message)) => Ok(Err(ServeResponse::Error { code, message })),
            }
        }

        /// Opens (or reuses) the shared query engine over one built
        /// snapshot at a landmark count. The slow part — mapping the
        /// snapshot and building the engine's indexes — runs outside the
        /// map lock so other connections' lookups never stall behind it;
        /// a racing open keeps the first inserted engine and counts the
        /// loser as a reuse (snapshots are byte-identical by the
        /// determinism contract, so the two engines are interchangeable).
        fn engine(
            &self,
            key: &CacheKey,
            landmarks: u64,
        ) -> Result<Arc<Mutex<QueryEngine>>, (ErrorCode, String)> {
            let engine_key = (key.file_name(), landmarks);
            if let Some(engine) = self
                .engines
                .lock()
                .expect("engine map lock")
                .get(&engine_key)
            {
                self.engine_reuses.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(engine));
            }
            let backend = MappedBackend::open(self.cache.entry_path(key)).map_err(|e| {
                (
                    ErrorCode::Internal,
                    format!("cannot map built snapshot: {e}"),
                )
            })?;
            let engine = QueryEngine::open(&backend)
                .map_err(|e| {
                    (
                        ErrorCode::Internal,
                        format!("cannot open query engine: {e}"),
                    )
                })?
                .with_landmarks(landmarks as usize);
            let engine = Arc::new(Mutex::new(engine));
            let mut map = self.engines.lock().expect("engine map lock");
            if let Some(existing) = map.get(&engine_key) {
                self.engine_reuses.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(existing));
            }
            map.insert(engine_key, Arc::clone(&engine));
            Ok(engine)
        }

        fn stats(&self) -> ServiceStats {
            let usage = self.cache.usage();
            ServiceStats {
                queue_depth: self.queue.lock().expect("job queue lock").len() as u64,
                queue_cap: self.cfg.queue_cap as u64,
                workers: self.cfg.workers as u64,
                jobs_done: self.jobs_done.load(Ordering::Relaxed),
                jobs_rejected: self.jobs_rejected.load(Ordering::Relaxed),
                cache_hits: usage.hits,
                cache_misses: usage.misses,
                cache_stores: usage.stores,
                cache_evictions: usage.evictions,
                cache_entries: usage.entries as u64,
                bytes_resident: usage.bytes_resident,
                budget: usage.budget.unwrap_or(0),
                engines_open: self.engines.lock().expect("engine map lock").len() as u64,
                engine_reuses: self.engine_reuses.load(Ordering::Relaxed),
                recent: self
                    .recent
                    .lock()
                    .expect("recent lock")
                    .iter()
                    .cloned()
                    .collect(),
            }
        }
    }

    /// Build worker: drains the queue until told to stop (finishing any
    /// jobs admitted before the stop — their clients are waiting).
    fn worker_loop(shared: &Shared) {
        loop {
            let job = {
                let mut queue = shared.queue.lock().expect("job queue lock");
                loop {
                    if let Some(job) = queue.pop_front() {
                        break Some(job);
                    }
                    if shared.stop.load(Ordering::SeqCst) {
                        break None;
                    }
                    queue = shared.work_ready.wait(queue).expect("job queue lock");
                }
            };
            let Some(job) = job else { return };
            job.ticket.fill(shared.run_job(&job.spec));
        }
    }

    /// One connection: handshake, then a request/response loop. Query
    /// engines are daemon-wide ([`Shared::engine`]): a connection locks
    /// the shared engine for its batch instead of mapping its own copy,
    /// so N concurrent clients querying one snapshot cost one engine,
    /// not N.
    fn handle_conn(shared: &Shared, stream: UnixStream) -> Result<(), ServeError> {
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = stream;

        match read_request(&mut reader)? {
            Some(ServeRequest::Hello { .. }) => {
                // Frame-level version checking already rejected skew.
                write_response(&mut writer, &ServeResponse::HelloOk { version: VERSION })?;
            }
            Some(_) => {
                write_response(
                    &mut writer,
                    &ServeResponse::Error {
                        code: ErrorCode::BadRequest,
                        message: "expected Hello as the first request".into(),
                    },
                )?;
                return Ok(());
            }
            None => return Ok(()),
        }

        while let Some(req) = read_request(&mut reader)? {
            match req {
                ServeRequest::Hello { .. } => {
                    write_response(&mut writer, &ServeResponse::HelloOk { version: VERSION })?;
                }
                ServeRequest::Build { job } => {
                    let outcome = shared.ensure_built(&job, |depth| {
                        write_response(&mut writer, &ServeResponse::Accepted { queue_depth: depth })
                    })?;
                    match outcome {
                        Ok((meta, phases)) => {
                            if meta.cache == JobCache::Cold {
                                for &(phase, micros, explorations) in &phases {
                                    write_response(
                                        &mut writer,
                                        &ServeResponse::Phase {
                                            phase,
                                            micros,
                                            explorations,
                                        },
                                    )?;
                                }
                            }
                            write_response(&mut writer, &ServeResponse::Built(meta))?;
                        }
                        Err(resp) => write_response(&mut writer, &resp)?,
                    }
                }
                ServeRequest::Query {
                    job,
                    pairs,
                    landmarks,
                } => {
                    let outcome = shared.ensure_built(&job, |_| Ok(()))?;
                    let (meta, _) = match outcome {
                        Ok(done) => done,
                        Err(resp) => {
                            write_response(&mut writer, &resp)?;
                            continue;
                        }
                    };
                    if let Some(&(u, v)) = pairs
                        .iter()
                        .find(|(u, v)| *u >= meta.num_vertices || *v >= meta.num_vertices)
                    {
                        write_response(
                            &mut writer,
                            &ServeResponse::Error {
                                code: ErrorCode::QueryOutOfRange,
                                message: format!(
                                    "pair ({u}, {v}) is outside the {}-vertex graph",
                                    meta.num_vertices
                                ),
                            },
                        )?;
                        continue;
                    }
                    let entry_key = match shared.prepare(&job) {
                        Ok((_, _, _, key)) => key,
                        Err((code, message)) => {
                            write_response(&mut writer, &ServeResponse::Error { code, message })?;
                            continue;
                        }
                    };
                    let engine = match shared.engine(&entry_key, landmarks) {
                        Ok(e) => e,
                        Err((code, message)) => {
                            write_response(&mut writer, &ServeResponse::Error { code, message })?;
                            continue;
                        }
                    };
                    let engine = engine.lock().expect("shared query engine lock");
                    let native: Vec<(usize, usize)> = pairs
                        .iter()
                        .map(|&(u, v)| (u as usize, v as usize))
                        .collect();
                    let (alpha, beta, distances) = if landmarks > 0 {
                        let (alpha, beta) = engine.landmark_guarantee();
                        let answers: Vec<u64> = native
                            .iter()
                            .map(|&(u, v)| engine.approx_distance(u, v).value.unwrap_or(u64::MAX))
                            .collect();
                        (alpha, beta, answers)
                    } else {
                        let (alpha, beta) = engine.guarantee();
                        let answers: Vec<u64> = engine
                            .distances(&native)
                            .into_iter()
                            .map(|c| c.value.unwrap_or(u64::MAX))
                            .collect();
                        (alpha, beta, answers)
                    };
                    write_response(
                        &mut writer,
                        &ServeResponse::Answers {
                            alpha,
                            beta,
                            cache: meta.cache,
                            distances,
                        },
                    )?;
                }
                ServeRequest::Stats => {
                    write_response(&mut writer, &ServeResponse::Stats(shared.stats()))?;
                }
                ServeRequest::Shutdown => {
                    write_response(&mut writer, &ServeResponse::Stopping)?;
                    shared.stop.store(true, Ordering::SeqCst);
                    shared.work_ready.notify_all();
                    // Unblock the accept loop so it observes the flag.
                    let _ = UnixStream::connect(&shared.cfg.socket);
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    /// The daemon: a bound socket plus the shared cache/queue state.
    pub struct Server {
        listener: UnixListener,
        shared: Arc<Shared>,
    }

    impl Server {
        /// Binds the socket (replacing a stale file), opens the shared
        /// evicting cache, and prepares the worker pool.
        ///
        /// # Errors
        ///
        /// [`ServeError::Io`] when the socket cannot be bound, or a
        /// cache-directory failure.
        pub fn bind(cfg: ServeConfig, resolver: Resolver) -> Result<Server, ServeError> {
            if cfg.socket.exists() {
                std::fs::remove_file(&cfg.socket)?;
            }
            if let Some(parent) = cfg.socket.parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)?;
                }
            }
            let cache = EvictingCache::open(&cfg.cache_dir, cfg.budget).map_err(|e| {
                ServeError::Corrupt {
                    reason: format!("cannot open cache directory: {e}"),
                }
            })?;
            let listener = UnixListener::bind(&cfg.socket)?;
            Ok(Server {
                listener,
                shared: Arc::new(Shared {
                    cfg,
                    resolver,
                    cache,
                    queue: Mutex::new(VecDeque::new()),
                    work_ready: Condvar::new(),
                    graphs: Mutex::new(HashMap::new()),
                    engines: Mutex::new(HashMap::new()),
                    engine_reuses: AtomicU64::new(0),
                    jobs_done: AtomicU64::new(0),
                    jobs_rejected: AtomicU64::new(0),
                    recent: Mutex::new(VecDeque::new()),
                    stop: AtomicBool::new(false),
                }),
            })
        }

        /// The socket path this daemon listens on.
        pub fn socket(&self) -> &Path {
            &self.shared.cfg.socket
        }

        /// Runs the accept loop until a client sends `Shutdown`. Spawns
        /// the build worker pool, handles each connection on its own
        /// thread, drains admitted jobs before returning, and unlinks
        /// the socket file.
        ///
        /// # Errors
        ///
        /// [`ServeError::Io`] from the accept loop itself; per-connection
        /// errors are contained to their connection thread.
        pub fn run(self) -> Result<(), ServeError> {
            let workers: Vec<_> = (0..self.shared.cfg.workers.max(1))
                .map(|i| {
                    let shared = Arc::clone(&self.shared);
                    std::thread::Builder::new()
                        .name(format!("usnae-serve-worker-{i}"))
                        .spawn(move || worker_loop(&shared))
                        .expect("spawn serve worker")
                })
                .collect();
            for stream in self.listener.incoming() {
                if self.shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                let stream = stream?;
                let shared = Arc::clone(&self.shared);
                std::thread::Builder::new()
                    .name("usnae-serve-conn".into())
                    .spawn(move || {
                        // Connection errors (a client that hung up
                        // mid-frame) must not take the daemon down.
                        let _ = handle_conn(&shared, stream);
                    })
                    .expect("spawn serve connection");
            }
            self.shared.work_ready.notify_all();
            for worker in workers {
                let _ = worker.join();
            }
            let _ = std::fs::remove_file(&self.shared.cfg.socket);
            Ok(())
        }
    }

    /// One answered query batch.
    #[derive(Debug, Clone, PartialEq)]
    pub struct QueryAnswers {
        /// Certified multiplicative stretch of every answer.
        pub alpha: f64,
        /// Certified additive stretch of every answer.
        pub beta: f64,
        /// Whether the serving structure was a warm hit.
        pub cache: JobCache,
        /// One distance per requested pair; `None` = unreachable.
        pub distances: Vec<Option<u64>>,
    }

    /// A connected serve client (the thin side of `--connect`).
    pub struct Client {
        reader: BufReader<UnixStream>,
        writer: UnixStream,
    }

    impl Client {
        /// Connects and completes the `Hello`/`HelloOk` version
        /// handshake.
        ///
        /// # Errors
        ///
        /// [`ServeError::Io`] when the socket is unreachable;
        /// [`ServeError::UnsupportedVersion`] on protocol skew.
        pub fn connect(socket: impl AsRef<Path>) -> Result<Client, ServeError> {
            let stream = UnixStream::connect(socket.as_ref())?;
            let mut client = Client {
                reader: BufReader::new(stream.try_clone()?),
                writer: stream,
            };
            write_request(
                &mut client.writer,
                &ServeRequest::Hello { version: VERSION },
            )?;
            match read_response(&mut client.reader)? {
                ServeResponse::HelloOk { .. } => Ok(client),
                other => Err(ServeError::Protocol {
                    reason: format!("expected HelloOk, got {other:?}"),
                }),
            }
        }

        /// Submits a build job; `on_phase(phase, micros, explorations)`
        /// observes each streamed phase frame of a cold build.
        ///
        /// # Errors
        ///
        /// [`ServeError::Busy`] when admission was refused,
        /// [`ServeError::Rejected`] for a typed daemon failure, plus any
        /// transport error.
        pub fn build(
            &mut self,
            job: &JobSpec,
            mut on_phase: impl FnMut(u64, u64, u64),
        ) -> Result<BuiltMeta, ServeError> {
            write_request(&mut self.writer, &ServeRequest::Build { job: job.clone() })?;
            loop {
                match read_response(&mut self.reader)? {
                    ServeResponse::Accepted { .. } => {}
                    ServeResponse::Phase {
                        phase,
                        micros,
                        explorations,
                    } => on_phase(phase, micros, explorations),
                    ServeResponse::Built(meta) => return Ok(meta),
                    ServeResponse::Busy { queue_cap } => {
                        return Err(ServeError::Busy {
                            queue_cap: queue_cap as usize,
                        })
                    }
                    ServeResponse::Error { code, message } => {
                        return Err(ServeError::Rejected { code, message })
                    }
                    other => {
                        return Err(ServeError::Protocol {
                            reason: format!("unexpected build response {other:?}"),
                        })
                    }
                }
            }
        }

        /// Answers a batch of distance queries over `job`'s output,
        /// building it read-through first when needed.
        ///
        /// # Errors
        ///
        /// Same taxonomy as [`Client::build`], plus
        /// [`ErrorCode::QueryOutOfRange`] inside
        /// [`ServeError::Rejected`].
        pub fn query(
            &mut self,
            job: &JobSpec,
            pairs: &[(u64, u64)],
            landmarks: u64,
        ) -> Result<QueryAnswers, ServeError> {
            write_request(
                &mut self.writer,
                &ServeRequest::Query {
                    job: job.clone(),
                    pairs: pairs.to_vec(),
                    landmarks,
                },
            )?;
            match read_response(&mut self.reader)? {
                ServeResponse::Answers {
                    alpha,
                    beta,
                    cache,
                    distances,
                } => Ok(QueryAnswers {
                    alpha,
                    beta,
                    cache,
                    distances: distances
                        .into_iter()
                        .map(|d| (d != u64::MAX).then_some(d))
                        .collect(),
                }),
                ServeResponse::Busy { queue_cap } => Err(ServeError::Busy {
                    queue_cap: queue_cap as usize,
                }),
                ServeResponse::Error { code, message } => {
                    Err(ServeError::Rejected { code, message })
                }
                other => Err(ServeError::Protocol {
                    reason: format!("unexpected query response {other:?}"),
                }),
            }
        }

        /// Fetches the daemon's observability counters.
        ///
        /// # Errors
        ///
        /// Transport errors, or [`ServeError::Protocol`] on an
        /// out-of-protocol reply.
        pub fn stats(&mut self) -> Result<ServiceStats, ServeError> {
            write_request(&mut self.writer, &ServeRequest::Stats)?;
            match read_response(&mut self.reader)? {
                ServeResponse::Stats(stats) => Ok(stats),
                other => Err(ServeError::Protocol {
                    reason: format!("unexpected stats response {other:?}"),
                }),
            }
        }

        /// Asks the daemon to stop; returns once it acknowledged.
        ///
        /// # Errors
        ///
        /// Transport errors, or [`ServeError::Protocol`] on an
        /// out-of-protocol reply.
        pub fn shutdown(&mut self) -> Result<(), ServeError> {
            write_request(&mut self.writer, &ServeRequest::Shutdown)?;
            match read_response(&mut self.reader)? {
                ServeResponse::Stopping => Ok(()),
                other => Err(ServeError::Protocol {
                    reason: format!("unexpected shutdown response {other:?}"),
                }),
            }
        }
    }
}
