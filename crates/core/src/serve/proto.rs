//! The serve daemon's typed message vocabulary and binary wire codec.
//!
//! Frames reuse the workspace grammar ([`usnae_workers::frame`]) under
//! the daemon's own magic, so a serve socket can never be confused with
//! a worker pipe or a cache file:
//!
//! ```text
//! +----------+---------+------+-------------+-----------+----------+
//! | USNAESRV | version | kind | payload_len | payload.. | checksum |
//! |  8 bytes |   u32   |  u8  |     u64     |           |   u64    |
//! +----------+---------+------+-------------+-----------+----------+
//! ```
//!
//! All integers are little-endian; corrupt, truncated, or
//! version-skewed frames surface as a typed [`ServeError`], never a
//! hang. The request/response vocabulary, error codes, and version
//! negotiation are documented operator-facing in `docs/PROTOCOL.md`.

use std::io::{Read, Write};

use usnae_workers::frame::{self, FrameError, Payload, Slice};

use crate::api::BuildConfig;
use crate::centralized::ProcessingOrder;
use crate::exec::PhaseTiming;

/// Frame magic of the serve protocol: distinct from the snapshot codec's
/// `USNAESNP` and the worker transport's `USNAEWKR`.
pub const MAGIC: &[u8; 8] = b"USNAESRV";

/// Serve protocol version. The client opens with
/// [`ServeRequest::Hello`] carrying its version; the daemon answers
/// [`ServeResponse::HelloOk`] with its own, and the frame layer rejects
/// any later skew with [`ServeError::UnsupportedVersion`].
///
/// v2 extended [`ServiceStats`] with the shared query-engine counters
/// (`engines_open` / `engine_reuses`).
pub const VERSION: u32 = 2;

/// Daemon-reported failure categories (the `code` of
/// [`ServeResponse::Error`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed job: unknown algorithm or invalid parameters.
    BadRequest,
    /// The graph reference could not be read or parsed daemon-side.
    GraphUnavailable,
    /// The construction itself failed.
    BuildFailed,
    /// A query pair names a vertex outside the graph.
    QueryOutOfRange,
    /// Anything else (cache I/O, internal invariant).
    Internal,
}

impl ErrorCode {
    fn code(self) -> u8 {
        match self {
            ErrorCode::BadRequest => 0,
            ErrorCode::GraphUnavailable => 1,
            ErrorCode::BuildFailed => 2,
            ErrorCode::QueryOutOfRange => 3,
            ErrorCode::Internal => 4,
        }
    }

    fn from_code(b: u8) -> Option<ErrorCode> {
        match b {
            0 => Some(ErrorCode::BadRequest),
            1 => Some(ErrorCode::GraphUnavailable),
            2 => Some(ErrorCode::BuildFailed),
            3 => Some(ErrorCode::QueryOutOfRange),
            4 => Some(ErrorCode::Internal),
            _ => None,
        }
    }

    /// Stable lower-case name (what the CLI prints).
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::GraphUnavailable => "graph-unavailable",
            ErrorCode::BuildFailed => "build-failed",
            ErrorCode::QueryOutOfRange => "query-out-of-range",
            ErrorCode::Internal => "internal",
        }
    }
}

/// Everything that can go wrong between a serve client and the daemon.
#[derive(Debug)]
pub enum ServeError {
    /// An OS-level socket failure.
    Io(std::io::Error),
    /// A frame did not start with the `USNAESRV` magic.
    BadMagic,
    /// A frame advertised a protocol version this build does not speak.
    UnsupportedVersion {
        /// Version found in the frame header.
        found: u32,
        /// Version this build speaks.
        supported: u32,
    },
    /// A frame ended early (short read) at the given byte offset.
    Truncated {
        /// Offset into the frame where the data ran out.
        offset: usize,
    },
    /// A frame's FNV-64 trailer did not match its contents.
    ChecksumMismatch {
        /// Checksum stored in the frame trailer.
        stored: u64,
        /// Checksum recomputed over the received bytes.
        computed: u64,
    },
    /// A structurally invalid frame or payload.
    Corrupt {
        /// Human-readable description of the malformation.
        reason: String,
    },
    /// The daemon refused admission: its build queue is full.
    Busy {
        /// The queue capacity that was exhausted.
        queue_cap: usize,
    },
    /// The daemon reported a typed job failure.
    Rejected {
        /// Failure category.
        code: ErrorCode,
        /// Daemon-side message.
        message: String,
    },
    /// The peer answered with an out-of-protocol response kind.
    Protocol {
        /// What was expected vs what arrived.
        reason: String,
    },
    /// The peer closed the connection mid-exchange.
    Disconnected,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve i/o error: {e}"),
            ServeError::BadMagic => write!(f, "serve frame is missing the USNAESRV magic"),
            ServeError::UnsupportedVersion { found, supported } => write!(
                f,
                "serve protocol version {found} is unsupported (this build speaks {supported})"
            ),
            ServeError::Truncated { offset } => {
                write!(f, "serve frame truncated at byte {offset}")
            }
            ServeError::ChecksumMismatch { stored, computed } => write!(
                f,
                "serve frame checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            ServeError::Corrupt { reason } => write!(f, "corrupt serve frame: {reason}"),
            ServeError::Busy { queue_cap } => write!(
                f,
                "daemon busy: build queue full ({queue_cap} job(s) queued); retry later"
            ),
            ServeError::Rejected { code, message } => {
                write!(f, "daemon rejected the job ({}): {message}", code.name())
            }
            ServeError::Protocol { reason } => write!(f, "serve protocol violation: {reason}"),
            ServeError::Disconnected => write!(f, "daemon closed the connection mid-exchange"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<FrameError> for ServeError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ServeError::Io(e),
            FrameError::BadMagic => ServeError::BadMagic,
            FrameError::UnsupportedVersion { found, supported } => {
                ServeError::UnsupportedVersion { found, supported }
            }
            FrameError::Truncated { offset } => ServeError::Truncated { offset },
            FrameError::ChecksumMismatch { stored, computed } => {
                ServeError::ChecksumMismatch { stored, computed }
            }
            FrameError::Corrupt { reason } => ServeError::Corrupt { reason },
        }
    }
}

/// One build job as shipped over the wire: a graph *reference* (a path
/// the daemon resolves on its own filesystem), the registry algorithm
/// name, and the output-relevant [`BuildConfig`] fields plus `threads`.
///
/// The sharded-layout fields (`shards`, `partition`, `transport`) are
/// deliberately not part of the job: they never change the built stream
/// (the determinism contract), so the daemon picks its own execution
/// layout. `traced` is not shippable either — traces are in-memory
/// structures the cache cannot serve.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Path of the edge-list file, resolved by the *daemon*.
    pub graph: String,
    /// Registry name of the construction.
    pub algorithm: String,
    /// Stretch parameter `ε`.
    pub epsilon: f64,
    /// Sparsity parameter `κ`.
    pub kappa: u32,
    /// Round exponent `ρ`.
    pub rho: f64,
    /// Skip the paper's ε-rescaling.
    pub raw_epsilon: bool,
    /// Center processing order.
    pub order: ProcessingOrder,
    /// Seed for randomized constructions.
    pub seed: u64,
    /// Worker threads the daemon should build with.
    pub threads: u64,
}

impl JobSpec {
    /// Assembles a job from CLI-style parts.
    pub fn new(graph: impl Into<String>, algorithm: impl Into<String>, cfg: &BuildConfig) -> Self {
        JobSpec {
            graph: graph.into(),
            algorithm: algorithm.into(),
            epsilon: cfg.epsilon,
            kappa: cfg.kappa,
            rho: cfg.rho,
            raw_epsilon: cfg.raw_epsilon,
            order: cfg.order,
            seed: cfg.seed,
            threads: cfg.threads as u64,
        }
    }

    /// The daemon-side [`BuildConfig`] this job builds with.
    pub fn to_config(&self) -> BuildConfig {
        BuildConfig {
            epsilon: self.epsilon,
            kappa: self.kappa,
            rho: self.rho,
            raw_epsilon: self.raw_epsilon,
            order: self.order,
            seed: self.seed,
            threads: (self.threads as usize).max(1),
            ..BuildConfig::default()
        }
    }
}

fn order_code(o: ProcessingOrder) -> u8 {
    match o {
        ProcessingOrder::ById => 0,
        ProcessingOrder::ByIdDesc => 1,
        ProcessingOrder::ByDegreeDesc => 2,
        ProcessingOrder::ByDegreeAsc => 3,
    }
}

fn order_from_code(b: u8) -> Option<ProcessingOrder> {
    match b {
        0 => Some(ProcessingOrder::ById),
        1 => Some(ProcessingOrder::ByIdDesc),
        2 => Some(ProcessingOrder::ByDegreeDesc),
        3 => Some(ProcessingOrder::ByDegreeAsc),
        _ => None,
    }
}

fn put_job(w: &mut Payload, job: &JobSpec) {
    w.str(&job.graph);
    w.str(&job.algorithm);
    w.f64(job.epsilon);
    w.u32(job.kappa);
    w.f64(job.rho);
    w.u8(u8::from(job.raw_epsilon));
    w.u8(order_code(job.order));
    w.u64(job.seed);
    w.u64(job.threads);
}

fn get_job(r: &mut Slice<'_>) -> Result<JobSpec, FrameError> {
    let graph = r.str()?;
    let algorithm = r.str()?;
    let epsilon = r.f64()?;
    let kappa = r.u32()?;
    let rho = r.f64()?;
    let raw_epsilon = r.u8()? != 0;
    let order_byte = r.u8()?;
    let order = order_from_code(order_byte).ok_or_else(|| FrameError::Corrupt {
        reason: format!("unknown processing-order code {order_byte}"),
    })?;
    Ok(JobSpec {
        graph,
        algorithm,
        epsilon,
        kappa,
        rho,
        raw_epsilon,
        order,
        seed: r.u64()?,
        threads: r.u64()?,
    })
}

/// Client → daemon messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeRequest {
    /// Opening handshake: the client's protocol version. The daemon
    /// answers [`ServeResponse::HelloOk`].
    Hello {
        /// Client protocol version.
        version: u32,
    },
    /// Submit one build job. Warm hits answer [`ServeResponse::Built`]
    /// directly; misses answer [`ServeResponse::Accepted`], stream zero
    /// or more [`ServeResponse::Phase`] frames, then `Built` (or a
    /// typed `Busy`/`Error`).
    Build {
        /// The job.
        job: JobSpec,
    },
    /// Answer a batch of distance queries over the job's output
    /// (building it read-through first if needed). One response frame:
    /// [`ServeResponse::Answers`], `Busy`, or `Error`.
    Query {
        /// The job whose output serves the queries.
        job: JobSpec,
        /// Query pairs `(u, v)`.
        pairs: Vec<(u64, u64)>,
        /// Landmarks to route through (0 = exact emulator paths).
        landmarks: u64,
    },
    /// Report service observability counters.
    Stats,
    /// Stop the daemon; it answers [`ServeResponse::Stopping`] and
    /// exits its accept loop.
    Shutdown,
}

/// How a daemon build was satisfied (mirrors
/// [`CacheStatus`](crate::exec::CacheStatus), wire-stable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobCache {
    /// Served from the shared evicting cache; no phase work ran.
    Warm,
    /// The construction ran (and the snapshot was published).
    Cold,
}

impl JobCache {
    /// `true` for a warm hit.
    pub fn is_warm(self) -> bool {
        matches!(self, JobCache::Warm)
    }
}

impl std::fmt::Display for JobCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            JobCache::Warm => "hit",
            JobCache::Cold => "miss",
        })
    }
}

/// The daemon's summary of one completed build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuiltMeta {
    /// Registry name of the construction.
    pub algorithm: String,
    /// Fingerprint of the built insertion stream — byte-identity proof
    /// against any other build of the same `(graph, algo, config)`.
    pub stream_fingerprint: u64,
    /// Vertex count of the output.
    pub num_vertices: u64,
    /// Edge count of the output.
    pub num_edges: u64,
    /// Warm hit or cold build.
    pub cache: JobCache,
    /// Daemon-side wall clock of satisfying the job, microseconds.
    pub total_micros: u64,
}

/// One per-job record in the `stats` response, phase timings included.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRecord {
    /// Registry name of the construction.
    pub algorithm: String,
    /// Stream fingerprint of the job's output.
    pub stream_fingerprint: u64,
    /// Warm hit or cold build.
    pub cache: JobCache,
    /// Total daemon-side microseconds.
    pub total_micros: u64,
    /// `(phase, micros, explorations)` per recorded phase (empty for
    /// warm hits — no phase work ran).
    pub phases: Vec<(u64, u64, u64)>,
}

impl JobRecord {
    /// Converts recorded [`PhaseTiming`]s into the wire shape.
    pub fn wire_phases(phases: &[PhaseTiming]) -> Vec<(u64, u64, u64)> {
        phases
            .iter()
            .map(|p| {
                (
                    p.phase as u64,
                    p.duration.as_micros() as u64,
                    p.explorations as u64,
                )
            })
            .collect()
    }
}

/// The daemon's observability counters ([`ServeRequest::Stats`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Build jobs currently queued (admitted, not yet running).
    pub queue_depth: u64,
    /// Admission-control queue capacity.
    pub queue_cap: u64,
    /// Build worker threads.
    pub workers: u64,
    /// Jobs completed (warm and cold).
    pub jobs_done: u64,
    /// Jobs refused admission ([`ServeResponse::Busy`]).
    pub jobs_rejected: u64,
    /// Shared-cache warm lookups.
    pub cache_hits: u64,
    /// Shared-cache misses.
    pub cache_misses: u64,
    /// Snapshots published.
    pub cache_stores: u64,
    /// Entries evicted to hold the byte budget.
    pub cache_evictions: u64,
    /// Entries currently resident.
    pub cache_entries: u64,
    /// Bytes currently resident.
    pub bytes_resident: u64,
    /// Configured byte budget (0 = unbounded).
    pub budget: u64,
    /// Query engines currently shared behind the daemon — one per
    /// `(snapshot, landmarks)` pair ever queried, regardless of how many
    /// connections used it.
    pub engines_open: u64,
    /// Query batches served off an already-open shared engine. Rising
    /// across connections proves the daemon reuses one engine per mapped
    /// snapshot instead of duplicating it per connection.
    pub engine_reuses: u64,
    /// Most recent completed jobs, oldest first (bounded window).
    pub recent: Vec<JobRecord>,
}

/// Daemon → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeResponse {
    /// Handshake acknowledged; carries the daemon's protocol version.
    HelloOk {
        /// Daemon protocol version.
        version: u32,
    },
    /// Build admitted to the queue at the given depth (position behind
    /// the jobs already waiting).
    Accepted {
        /// Jobs ahead of this one when it was admitted.
        queue_depth: u64,
    },
    /// One recorded build phase, streamed to the submitting client
    /// after the construction finishes (cold builds only).
    Phase {
        /// Phase index.
        phase: u64,
        /// Phase wall clock, microseconds.
        micros: u64,
        /// Bounded-BFS explorations launched this phase.
        explorations: u64,
    },
    /// The job's output summary (terminal frame of a build exchange).
    Built(BuiltMeta),
    /// Certified batched answers, pair order. `dist == u64::MAX` encodes
    /// "unreachable".
    Answers {
        /// Certified multiplicative stretch `α`.
        alpha: f64,
        /// Certified additive stretch `β`.
        beta: f64,
        /// Warm hit or cold build satisfied the serving structure.
        cache: JobCache,
        /// One distance per requested pair (`u64::MAX` = unreachable).
        distances: Vec<u64>,
    },
    /// The observability report.
    Stats(ServiceStats),
    /// Admission refused: the build queue is at capacity.
    Busy {
        /// The exhausted queue capacity.
        queue_cap: u64,
    },
    /// Typed job failure.
    Error {
        /// Failure category.
        code: ErrorCode,
        /// Human-readable daemon-side message.
        message: String,
    },
    /// Shutdown acknowledged; the daemon is exiting.
    Stopping,
}

impl ServeRequest {
    fn kind(&self) -> u8 {
        match self {
            ServeRequest::Hello { .. } => 0,
            ServeRequest::Build { .. } => 1,
            ServeRequest::Query { .. } => 2,
            ServeRequest::Stats => 3,
            ServeRequest::Shutdown => 4,
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut w = Payload::new();
        match self {
            ServeRequest::Hello { version } => w.u32(*version),
            ServeRequest::Build { job } => put_job(&mut w, job),
            ServeRequest::Query {
                job,
                pairs,
                landmarks,
            } => {
                put_job(&mut w, job);
                w.u64(*landmarks);
                w.usize(pairs.len());
                for &(u, v) in pairs {
                    w.u64(u);
                    w.u64(v);
                }
            }
            ServeRequest::Stats | ServeRequest::Shutdown => {}
        }
        w.into_bytes()
    }

    fn decode(kind: u8, payload: &[u8]) -> Result<ServeRequest, ServeError> {
        let mut r = Slice::new(payload);
        let req = match kind {
            0 => ServeRequest::Hello { version: r.u32()? },
            1 => ServeRequest::Build {
                job: get_job(&mut r)?,
            },
            2 => {
                let job = get_job(&mut r)?;
                let landmarks = r.u64()?;
                let n = r.count(16)?;
                let mut pairs = Vec::with_capacity(n);
                for _ in 0..n {
                    pairs.push((r.u64()?, r.u64()?));
                }
                ServeRequest::Query {
                    job,
                    pairs,
                    landmarks,
                }
            }
            3 => ServeRequest::Stats,
            4 => ServeRequest::Shutdown,
            _ => {
                return Err(ServeError::Corrupt {
                    reason: format!("unknown request kind {kind}"),
                })
            }
        };
        r.finish()?;
        Ok(req)
    }
}

fn put_cache(w: &mut Payload, c: JobCache) {
    w.u8(u8::from(c.is_warm()));
}

fn get_cache(r: &mut Slice<'_>) -> Result<JobCache, FrameError> {
    Ok(if r.u8()? != 0 {
        JobCache::Warm
    } else {
        JobCache::Cold
    })
}

fn put_record(w: &mut Payload, rec: &JobRecord) {
    w.str(&rec.algorithm);
    w.u64(rec.stream_fingerprint);
    put_cache(w, rec.cache);
    w.u64(rec.total_micros);
    w.usize(rec.phases.len());
    for &(phase, micros, explorations) in &rec.phases {
        w.u64(phase);
        w.u64(micros);
        w.u64(explorations);
    }
}

fn get_record(r: &mut Slice<'_>) -> Result<JobRecord, FrameError> {
    let algorithm = r.str()?;
    let stream_fingerprint = r.u64()?;
    let cache = get_cache(r)?;
    let total_micros = r.u64()?;
    let n = r.count(24)?;
    let mut phases = Vec::with_capacity(n);
    for _ in 0..n {
        phases.push((r.u64()?, r.u64()?, r.u64()?));
    }
    Ok(JobRecord {
        algorithm,
        stream_fingerprint,
        cache,
        total_micros,
        phases,
    })
}

impl ServeResponse {
    fn kind(&self) -> u8 {
        match self {
            ServeResponse::HelloOk { .. } => 0,
            ServeResponse::Accepted { .. } => 1,
            ServeResponse::Phase { .. } => 2,
            ServeResponse::Built(_) => 3,
            ServeResponse::Answers { .. } => 4,
            ServeResponse::Stats(_) => 5,
            ServeResponse::Busy { .. } => 6,
            ServeResponse::Error { .. } => 7,
            ServeResponse::Stopping => 8,
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut w = Payload::new();
        match self {
            ServeResponse::HelloOk { version } => w.u32(*version),
            ServeResponse::Accepted { queue_depth } => w.u64(*queue_depth),
            ServeResponse::Phase {
                phase,
                micros,
                explorations,
            } => {
                w.u64(*phase);
                w.u64(*micros);
                w.u64(*explorations);
            }
            ServeResponse::Built(meta) => {
                w.str(&meta.algorithm);
                w.u64(meta.stream_fingerprint);
                w.u64(meta.num_vertices);
                w.u64(meta.num_edges);
                put_cache(&mut w, meta.cache);
                w.u64(meta.total_micros);
            }
            ServeResponse::Answers {
                alpha,
                beta,
                cache,
                distances,
            } => {
                w.f64(*alpha);
                w.f64(*beta);
                put_cache(&mut w, *cache);
                w.usize(distances.len());
                for &d in distances {
                    w.u64(d);
                }
            }
            ServeResponse::Stats(s) => {
                w.u64(s.queue_depth);
                w.u64(s.queue_cap);
                w.u64(s.workers);
                w.u64(s.jobs_done);
                w.u64(s.jobs_rejected);
                w.u64(s.cache_hits);
                w.u64(s.cache_misses);
                w.u64(s.cache_stores);
                w.u64(s.cache_evictions);
                w.u64(s.cache_entries);
                w.u64(s.bytes_resident);
                w.u64(s.budget);
                w.u64(s.engines_open);
                w.u64(s.engine_reuses);
                w.usize(s.recent.len());
                for rec in &s.recent {
                    put_record(&mut w, rec);
                }
            }
            ServeResponse::Busy { queue_cap } => w.u64(*queue_cap),
            ServeResponse::Error { code, message } => {
                w.u8(code.code());
                w.str(message);
            }
            ServeResponse::Stopping => {}
        }
        w.into_bytes()
    }

    fn decode(kind: u8, payload: &[u8]) -> Result<ServeResponse, ServeError> {
        let mut r = Slice::new(payload);
        let resp = match kind {
            0 => ServeResponse::HelloOk { version: r.u32()? },
            1 => ServeResponse::Accepted {
                queue_depth: r.u64()?,
            },
            2 => ServeResponse::Phase {
                phase: r.u64()?,
                micros: r.u64()?,
                explorations: r.u64()?,
            },
            3 => ServeResponse::Built(BuiltMeta {
                algorithm: r.str()?,
                stream_fingerprint: r.u64()?,
                num_vertices: r.u64()?,
                num_edges: r.u64()?,
                cache: get_cache(&mut r)?,
                total_micros: r.u64()?,
            }),
            4 => {
                let alpha = r.f64()?;
                let beta = r.f64()?;
                let cache = get_cache(&mut r)?;
                let n = r.count(8)?;
                let mut distances = Vec::with_capacity(n);
                for _ in 0..n {
                    distances.push(r.u64()?);
                }
                ServeResponse::Answers {
                    alpha,
                    beta,
                    cache,
                    distances,
                }
            }
            5 => {
                let mut s = ServiceStats {
                    queue_depth: r.u64()?,
                    queue_cap: r.u64()?,
                    workers: r.u64()?,
                    jobs_done: r.u64()?,
                    jobs_rejected: r.u64()?,
                    cache_hits: r.u64()?,
                    cache_misses: r.u64()?,
                    cache_stores: r.u64()?,
                    cache_evictions: r.u64()?,
                    cache_entries: r.u64()?,
                    bytes_resident: r.u64()?,
                    budget: r.u64()?,
                    engines_open: r.u64()?,
                    engine_reuses: r.u64()?,
                    recent: Vec::new(),
                };
                let n = r.count(8)?;
                s.recent.reserve(n);
                for _ in 0..n {
                    s.recent.push(get_record(&mut r)?);
                }
                ServeResponse::Stats(s)
            }
            6 => ServeResponse::Busy {
                queue_cap: r.u64()?,
            },
            7 => {
                let code_byte = r.u8()?;
                let code = ErrorCode::from_code(code_byte).ok_or_else(|| ServeError::Corrupt {
                    reason: format!("unknown error code {code_byte}"),
                })?;
                ServeResponse::Error {
                    code,
                    message: r.str()?,
                }
            }
            8 => ServeResponse::Stopping,
            _ => {
                return Err(ServeError::Corrupt {
                    reason: format!("unknown response kind {kind}"),
                })
            }
        };
        r.finish()?;
        Ok(resp)
    }
}

/// Writes one request frame.
///
/// # Errors
///
/// [`ServeError::Io`] on socket failures.
pub fn write_request(out: &mut impl Write, req: &ServeRequest) -> Result<(), ServeError> {
    frame::write_frame(out, MAGIC, VERSION, req.kind(), &req.payload()).map_err(ServeError::from)
}

/// Writes one response frame.
///
/// # Errors
///
/// [`ServeError::Io`] on socket failures.
pub fn write_response(out: &mut impl Write, resp: &ServeResponse) -> Result<(), ServeError> {
    frame::write_frame(out, MAGIC, VERSION, resp.kind(), &resp.payload()).map_err(ServeError::from)
}

/// Reads one request frame; `Ok(None)` on clean EOF (the client closed
/// between requests).
///
/// # Errors
///
/// Any framing/codec [`ServeError`].
pub fn read_request(input: &mut impl Read) -> Result<Option<ServeRequest>, ServeError> {
    match frame::read_frame(input, MAGIC, VERSION)? {
        None => Ok(None),
        Some((kind, payload)) => ServeRequest::decode(kind, &payload).map(Some),
    }
}

/// Reads one response frame; clean EOF is [`ServeError::Disconnected`]
/// (the daemon must answer every request).
///
/// # Errors
///
/// Any framing/codec [`ServeError`].
pub fn read_response(input: &mut impl Read) -> Result<ServeResponse, ServeError> {
    match frame::read_frame(input, MAGIC, VERSION)? {
        None => Err(ServeError::Disconnected),
        Some((kind, payload)) => ServeResponse::decode(kind, &payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_job() -> JobSpec {
        JobSpec::new(
            "/tmp/g.txt",
            "centralized",
            &BuildConfig {
                kappa: 6,
                seed: 9,
                threads: 3,
                ..BuildConfig::default()
            },
        )
    }

    fn round_trip_request(req: ServeRequest) {
        let mut buf = Vec::new();
        write_request(&mut buf, &req).unwrap();
        let got = read_request(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(got, req);
    }

    fn round_trip_response(resp: ServeResponse) {
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        let got = read_response(&mut buf.as_slice()).unwrap();
        assert_eq!(got, resp);
    }

    #[test]
    fn every_message_kind_round_trips() {
        round_trip_request(ServeRequest::Hello { version: VERSION });
        round_trip_request(ServeRequest::Build { job: sample_job() });
        round_trip_request(ServeRequest::Query {
            job: sample_job(),
            pairs: vec![(0, 5), (3, 3)],
            landmarks: 2,
        });
        round_trip_request(ServeRequest::Stats);
        round_trip_request(ServeRequest::Shutdown);

        round_trip_response(ServeResponse::HelloOk { version: VERSION });
        round_trip_response(ServeResponse::Accepted { queue_depth: 2 });
        round_trip_response(ServeResponse::Phase {
            phase: 1,
            micros: 420,
            explorations: 17,
        });
        round_trip_response(ServeResponse::Built(BuiltMeta {
            algorithm: "spanner".into(),
            stream_fingerprint: 0xDEAD_BEEF,
            num_vertices: 48,
            num_edges: 96,
            cache: JobCache::Warm,
            total_micros: 1234,
        }));
        round_trip_response(ServeResponse::Answers {
            alpha: 1.5,
            beta: 4.0,
            cache: JobCache::Cold,
            distances: vec![0, 7, u64::MAX],
        });
        round_trip_response(ServeResponse::Stats(ServiceStats {
            queue_depth: 1,
            queue_cap: 8,
            workers: 2,
            jobs_done: 3,
            jobs_rejected: 1,
            cache_hits: 2,
            cache_misses: 1,
            cache_stores: 1,
            cache_evictions: 1,
            cache_entries: 1,
            bytes_resident: 4096,
            budget: 8192,
            engines_open: 2,
            engine_reuses: 5,
            recent: vec![JobRecord {
                algorithm: "em19".into(),
                stream_fingerprint: 7,
                cache: JobCache::Cold,
                total_micros: 99,
                phases: vec![(0, 50, 12), (1, 30, 4)],
            }],
        }));
        round_trip_response(ServeResponse::Busy { queue_cap: 8 });
        round_trip_response(ServeResponse::Error {
            code: ErrorCode::GraphUnavailable,
            message: "no such file".into(),
        });
        round_trip_response(ServeResponse::Stopping);
    }

    #[test]
    fn job_spec_round_trips_through_build_config() {
        let cfg = BuildConfig {
            epsilon: 0.25,
            kappa: 8,
            rho: 0.4,
            raw_epsilon: true,
            order: ProcessingOrder::ByDegreeDesc,
            seed: 42,
            threads: 4,
            ..BuildConfig::default()
        };
        let job = JobSpec::new("g.txt", "spanner", &cfg);
        let back = job.to_config();
        // Exactly the output-relevant fields (plus threads) survive the
        // trip — the daemon must key the cache identically to a local run.
        assert_eq!(back.stable_digest(), cfg.stable_digest());
        assert_eq!(back.threads, cfg.threads);
    }

    #[test]
    fn corrupt_frames_surface_typed_errors() {
        let mut buf = Vec::new();
        write_request(&mut buf, &ServeRequest::Stats).unwrap();
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(
            read_request(&mut bad.as_slice()),
            Err(ServeError::BadMagic)
        ));
        let cut = &buf[..buf.len() - 2];
        assert!(matches!(
            read_request(&mut { cut }),
            Err(ServeError::Truncated { .. })
        ));
        let empty: &[u8] = &[];
        assert!(read_request(&mut { empty }).unwrap().is_none());
        assert!(matches!(
            read_response(&mut { empty }),
            Err(ServeError::Disconnected)
        ));
    }
}
