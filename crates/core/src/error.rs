//! Parameter validation errors.

use std::error::Error;
use std::fmt;

/// Rejections of the paper's parameter preconditions.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamError {
    /// ε must lie in `(0, 1)` (the rescaled condition `ε' < 1` of §2.2.4).
    EpsilonOutOfRange {
        /// The supplied value.
        epsilon: f64,
    },
    /// κ must be at least 2.
    KappaTooSmall {
        /// The supplied value.
        kappa: u32,
    },
    /// ρ must satisfy `1/κ < ρ < 1/2` (§3).
    RhoOutOfRange {
        /// The supplied value.
        rho: f64,
        /// The κ it was paired with.
        kappa: u32,
    },
    /// `threads` must be at least 1 (1 = sequential build).
    ZeroThreads,
    /// A worker transport (`channel`/`process`) needs a partitioned
    /// layout: `shards` must be at least 1 so there are shards to own.
    TransportNeedsShards {
        /// The transport name that was requested.
        transport: &'static str,
    },
    /// A worker transport (`channel`/`process`) was requested from a
    /// construction that cannot shard its execution (the CONGEST
    /// simulations and whole-graph baselines run in-process only).
    /// Rejected loudly instead of silently running in-process, so a
    /// requested worker build never quietly reports one that did not
    /// happen.
    TransportUnsupported {
        /// Registry name of the refusing construction.
        algorithm: &'static str,
        /// The transport name that was requested.
        transport: &'static str,
    },
    /// A float parameter was NaN or infinite. Rejected up front so
    /// [`BuildConfig`](crate::api::BuildConfig) is a total `Eq + Hash` key
    /// (cache keys must never see NaN).
    NonFinite {
        /// Which field (`"epsilon"` or `"rho"`).
        field: &'static str,
        /// The supplied value.
        value: f64,
    },
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::EpsilonOutOfRange { epsilon } => {
                write!(
                    f,
                    "epsilon {epsilon} outside the required open interval (0, 1)"
                )
            }
            ParamError::KappaTooSmall { kappa } => {
                write!(f, "kappa {kappa} must be at least 2")
            }
            ParamError::RhoOutOfRange { rho, kappa } => {
                write!(
                    f,
                    "rho {rho} must satisfy 1/kappa < rho < 1/2 for kappa {kappa}"
                )
            }
            ParamError::ZeroThreads => {
                write!(f, "threads must be at least 1 (1 = sequential build)")
            }
            ParamError::TransportNeedsShards { transport } => {
                write!(
                    f,
                    "the {transport} transport needs a partitioned layout: set shards >= 1"
                )
            }
            ParamError::TransportUnsupported {
                algorithm,
                transport,
            } => {
                write!(
                    f,
                    "{algorithm} runs in-process only and cannot honor the \
                     {transport} transport (use transport=inproc)"
                )
            }
            ParamError::NonFinite { field, value } => {
                write!(f, "{field} must be finite (got {value})")
            }
        }
    }
}

impl Error for ParamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        assert!(ParamError::EpsilonOutOfRange { epsilon: 1.5 }
            .to_string()
            .contains("1.5"));
        assert!(ParamError::KappaTooSmall { kappa: 1 }
            .to_string()
            .contains("kappa 1"));
        assert!(ParamError::RhoOutOfRange { rho: 0.7, kappa: 4 }
            .to_string()
            .contains("0.7"));
        assert!(ParamError::ZeroThreads.to_string().contains("threads"));
    }
}
