//! Runtime re-check of the paper's charging argument (§2.2.1).
//!
//! Lemma 2.4's `|H| ≤ n^(1+1/κ)` rests on three facts about how edges are
//! charged to vertices:
//!
//! 1. a center charged with interconnection edges in phase `i` is charged
//!    with **fewer than `deg_i`** of them (it was unpopular);
//! 2. a center is charged with **at most one** superclustering or
//!    buffer-join edge per phase (it joins at most one supercluster);
//! 3. no center is charged with both kinds in the same phase (it either
//!    joined `U_i` or was superclustered).
//!
//! [`ChargeLedger`] replays an emulator's provenance records and certifies
//! all three, giving the size bound a mechanical witness.

use crate::emulator::{EdgeKind, Emulator};
use std::collections::HashMap;
use usnae_graph::VertexId;

/// Per-(vertex, phase) charge counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Charges {
    /// Interconnection edges charged.
    pub interconnection: usize,
    /// Superclustering + buffer-join edges charged.
    pub superclustering: usize,
}

/// A violation of the charging discipline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChargeViolation {
    /// A vertex absorbed `count ≥ deg_i` interconnection charges.
    TooManyInterconnections {
        /// The overloaded vertex.
        vertex: VertexId,
        /// The phase in which it happened.
        phase: usize,
        /// Charges observed.
        count: usize,
        /// The exclusive cap (`deg_i`, rounded up).
        cap: usize,
    },
    /// A vertex was charged with more than one superclustering edge.
    MultipleSuperclusterings {
        /// The overloaded vertex.
        vertex: VertexId,
        /// The phase in which it happened.
        phase: usize,
        /// Charges observed.
        count: usize,
    },
    /// A vertex carried both charge kinds in one phase.
    MixedCharges {
        /// The offending vertex.
        vertex: VertexId,
        /// The phase in which it happened.
        phase: usize,
    },
}

impl std::fmt::Display for ChargeViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChargeViolation::TooManyInterconnections {
                vertex,
                phase,
                count,
                cap,
            } => write!(
                f,
                "vertex {vertex} charged {count} interconnection edges in phase {phase} (cap {cap})"
            ),
            ChargeViolation::MultipleSuperclusterings {
                vertex,
                phase,
                count,
            } => write!(
                f,
                "vertex {vertex} charged {count} superclustering edges in phase {phase}"
            ),
            ChargeViolation::MixedCharges { vertex, phase } => {
                write!(
                    f,
                    "vertex {vertex} carries both charge kinds in phase {phase}"
                )
            }
        }
    }
}

impl std::error::Error for ChargeViolation {}

/// Replayed charge table of an emulator build.
#[derive(Debug, Clone, Default)]
pub struct ChargeLedger {
    charges: HashMap<(VertexId, usize), Charges>,
    num_phases: usize,
}

impl ChargeLedger {
    /// Replays every provenance record of `emulator`.
    pub fn from_emulator(emulator: &Emulator) -> Self {
        let mut ledger = ChargeLedger::default();
        for (_, p) in emulator.provenance() {
            let entry = ledger.charges.entry((p.charged_to, p.phase)).or_default();
            match p.kind {
                EdgeKind::Interconnection => entry.interconnection += 1,
                EdgeKind::Superclustering | EdgeKind::BufferJoin => entry.superclustering += 1,
            }
            ledger.num_phases = ledger.num_phases.max(p.phase + 1);
        }
        ledger
    }

    /// Charges of `vertex` in `phase`.
    pub fn charges(&self, vertex: VertexId, phase: usize) -> Charges {
        self.charges
            .get(&(vertex, phase))
            .copied()
            .unwrap_or_default()
    }

    /// Number of phases that charged anything.
    pub fn num_phases(&self) -> usize {
        self.num_phases
    }

    /// Total charges across all vertices and phases (equals the number of
    /// provenance records).
    pub fn total(&self) -> usize {
        self.charges
            .values()
            .map(|c| c.interconnection + c.superclustering)
            .sum()
    }

    /// Certifies the three charging rules. `degree_cap(i)` must return the
    /// integer popularity threshold `⌈deg_i⌉` of phase `i`; rule 1 checks
    /// `interconnection ≤ ⌈deg_i⌉ − 1` (i.e. strictly below `deg_i`).
    ///
    /// # Errors
    ///
    /// The first [`ChargeViolation`] found, in unspecified order.
    pub fn verify(&self, degree_cap: impl Fn(usize) -> usize) -> Result<(), ChargeViolation> {
        for (&(vertex, phase), c) in &self.charges {
            let cap = degree_cap(phase);
            if c.interconnection > cap.saturating_sub(1) {
                return Err(ChargeViolation::TooManyInterconnections {
                    vertex,
                    phase,
                    count: c.interconnection,
                    cap,
                });
            }
            if c.superclustering > 1 {
                return Err(ChargeViolation::MultipleSuperclusterings {
                    vertex,
                    phase,
                    count: c.superclustering,
                });
            }
            if c.superclustering > 0 && c.interconnection > 0 {
                return Err(ChargeViolation::MixedCharges { vertex, phase });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emulator::EdgeProvenance;

    fn prov(phase: usize, kind: EdgeKind, charged_to: VertexId) -> EdgeProvenance {
        EdgeProvenance {
            phase,
            kind,
            charged_to,
        }
    }

    #[test]
    fn ledger_counts_by_vertex_and_phase() {
        let mut h = Emulator::new(6);
        h.add_edge(0, 1, 1, prov(0, EdgeKind::Interconnection, 0));
        h.add_edge(0, 2, 1, prov(0, EdgeKind::Interconnection, 0));
        h.add_edge(3, 4, 1, prov(1, EdgeKind::Superclustering, 4));
        let ledger = ChargeLedger::from_emulator(&h);
        assert_eq!(ledger.charges(0, 0).interconnection, 2);
        assert_eq!(ledger.charges(4, 1).superclustering, 1);
        assert_eq!(ledger.charges(5, 0), Charges::default());
        assert_eq!(ledger.total(), 3);
        assert_eq!(ledger.num_phases(), 2);
    }

    #[test]
    fn verify_accepts_legal_ledger() {
        let mut h = Emulator::new(6);
        h.add_edge(0, 1, 1, prov(0, EdgeKind::Interconnection, 0));
        h.add_edge(2, 3, 1, prov(0, EdgeKind::BufferJoin, 3));
        let ledger = ChargeLedger::from_emulator(&h);
        assert!(ledger.verify(|_| 4).is_ok());
    }

    #[test]
    fn verify_rejects_overloaded_interconnection() {
        let mut h = Emulator::new(8);
        for v in 1..5 {
            h.add_edge(0, v, 1, prov(0, EdgeKind::Interconnection, 0));
        }
        let ledger = ChargeLedger::from_emulator(&h);
        // Cap 4 means at most 3 interconnection charges are legal.
        assert_eq!(
            ledger.verify(|_| 4),
            Err(ChargeViolation::TooManyInterconnections {
                vertex: 0,
                phase: 0,
                count: 4,
                cap: 4
            })
        );
    }

    #[test]
    fn verify_rejects_double_supercluster_charge() {
        let mut h = Emulator::new(6);
        h.add_edge(0, 1, 1, prov(0, EdgeKind::Superclustering, 1));
        h.add_edge(2, 1, 1, prov(0, EdgeKind::Superclustering, 1));
        let ledger = ChargeLedger::from_emulator(&h);
        assert!(matches!(
            ledger.verify(|_| 10),
            Err(ChargeViolation::MultipleSuperclusterings {
                vertex: 1,
                phase: 0,
                count: 2
            })
        ));
    }

    #[test]
    fn verify_rejects_mixed_charges() {
        let mut h = Emulator::new(6);
        h.add_edge(0, 1, 1, prov(0, EdgeKind::Interconnection, 1));
        h.add_edge(2, 1, 1, prov(0, EdgeKind::BufferJoin, 1));
        let ledger = ChargeLedger::from_emulator(&h);
        assert!(matches!(
            ledger.verify(|_| 10),
            Err(ChargeViolation::MixedCharges { .. })
        ));
    }

    #[test]
    fn same_vertex_across_phases_is_fine() {
        let mut h = Emulator::new(6);
        h.add_edge(0, 1, 1, prov(0, EdgeKind::Interconnection, 1));
        h.add_edge(2, 1, 1, prov(1, EdgeKind::Superclustering, 1));
        let ledger = ChargeLedger::from_emulator(&h);
        assert!(ledger.verify(|_| 10).is_ok());
    }

    #[test]
    fn violation_display_names_vertex() {
        let v = ChargeViolation::MixedCharges {
            vertex: 9,
            phase: 2,
        };
        assert!(v.to_string().contains("vertex 9"));
    }
}
