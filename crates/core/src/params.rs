//! The paper's parameter algebra.
//!
//! Everything in the constructions is driven by four derived sequences:
//!
//! * the number of phases `ℓ`;
//! * degree thresholds `deg_i` (when is a cluster *popular*);
//! * distance thresholds `δ_i` (when are clusters *neighboring*);
//! * radius bounds `R_i` (certified cluster radii, Lemmas 2.5 / 3.8).
//!
//! Three schedules are reproduced:
//!
//! * [`CentralizedParams`] — §2.1.2: `ℓ = ⌈log₂((κ+1)/2)⌉`,
//!   `deg_i = n^(2^i/κ)`, `R_{i+1} = 2·δ_i + R_i`.
//! * [`DistributedParams`] — §3.1.1: exponential-growth phases up to
//!   `i₀ = ⌊log₂ κρ⌋` then fixed growth at `n^ρ`;
//!   `R_{i+1} = (4/ρ + 2)·δ_i + R_i` (the ruling-forest radius).
//! * [`SpannerParams`] — §4: the EN17a degree sequence with
//!   `γ = max(2, log log κ)`, a transition phase at `n^(ρ/2)`, then `n^ρ`.
//!
//! # Integer thresholds and certified stretch
//!
//! The paper treats `δ_i` as reals; hop distances are integers, so we use
//! `δ_i = ⌈(1/ε)^i⌉ + 2·R_i`. All the stretch lemmas only need the
//! *inequalities* `δ_i ≥ (1/ε)^i + 2R_i` and the recursions as stated, so the
//! certified pair `(α_ℓ, β_ℓ)` computed from the exact recursions
//! (`β_i = 2β_{i−1} + 6R_i`, `α_i = α_{i−1} + ε^i/(1−ε^i)·β_i`) is a sound
//! upper bound for what the code actually builds — and much tighter than the
//! closed forms, which we also expose for comparison with the paper's
//! statements.

use crate::error::ParamError;
use usnae_graph::Dist;

/// Saturation cap for distance thresholds. Any threshold beyond this exceeds
/// every graph diameter we can simulate, so capping preserves behaviour while
/// avoiding `u64` overflow in the `(1/ε)^i` growth.
pub const DELTA_CAP: Dist = 1 << 50;

fn sat_add(a: Dist, b: Dist) -> Dist {
    a.saturating_add(b).min(DELTA_CAP)
}

fn sat_mul(a: Dist, b: Dist) -> Dist {
    a.saturating_mul(b).min(DELTA_CAP)
}

/// Ceil of `x` as a saturated distance.
fn ceil_dist(x: f64) -> Dist {
    if x >= DELTA_CAP as f64 {
        DELTA_CAP
    } else {
        x.ceil() as Dist
    }
}

/// One phase's distance/radius thresholds plus the internal ε they were
/// derived from. Shared by all three schedules.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSchedule {
    /// Number of the last phase `ℓ`; phases are `0..=ell`.
    pub ell: usize,
    /// `δ_i = ⌈(1/ε)^i⌉ + 2·R_i` for `i ∈ [0, ℓ]`.
    pub delta: Vec<Dist>,
    /// `R_i` for `i ∈ [0, ℓ+1]` (`R_{ℓ+1}` bounds final supercluster radii).
    pub radius: Vec<Dist>,
    /// The internal (rescaled) ε driving `(1/ε)^i`.
    pub eps_internal: f64,
}

impl PhaseSchedule {
    /// Builds the schedule with radius recursion
    /// `R_{i+1} = radius_multiplier·δ_i + R_i`, `R_0 = 0`.
    ///
    /// `radius_multiplier` is 2 for the centralized construction (§2.1.2)
    /// and `⌈4/ρ⌉ + 2` for the distributed one (§3.1.1; the ceiling only
    /// enlarges the certified radii, keeping every bound valid).
    pub fn build(ell: usize, eps_internal: f64, radius_multiplier: Dist) -> Self {
        assert!(
            eps_internal > 0.0 && eps_internal < 1.0,
            "internal epsilon in (0,1)"
        );
        let inv_eps = 1.0 / eps_internal;
        let mut delta = Vec::with_capacity(ell + 1);
        let mut radius = Vec::with_capacity(ell + 2);
        radius.push(0); // R_0
        for i in 0..=ell {
            let pow = ceil_dist(inv_eps.powi(i as i32));
            let d_i = sat_add(pow, sat_mul(2, radius[i]));
            delta.push(d_i);
            radius.push(sat_add(sat_mul(radius_multiplier, d_i), radius[i]));
        }
        PhaseSchedule {
            ell,
            delta,
            radius,
            eps_internal,
        }
    }

    /// Certified additive terms `β_i = 2β_{i−1} + 6R_i` (Lemma 2.12), for
    /// `i ∈ [0, ℓ]`, computed from the *actual* integer radii.
    pub fn beta_sequence(&self) -> Vec<f64> {
        let mut beta = vec![0.0];
        for i in 1..=self.ell {
            beta.push(2.0 * beta[i - 1] + 6.0 * self.radius[i] as f64);
        }
        beta
    }

    /// Certified multiplicative terms `α_i = α_{i−1} + ε^i/(1−ε^i)·β_i`.
    pub fn alpha_sequence(&self) -> Vec<f64> {
        let beta = self.beta_sequence();
        let mut alpha = vec![1.0];
        for i in 1..=self.ell {
            let e = self.eps_internal.powi(i as i32);
            alpha.push(alpha[i - 1] + e / (1.0 - e) * beta[i]);
        }
        alpha
    }

    /// The certified stretch pair `(α_ℓ, β_ℓ)`: every emulator built with
    /// this schedule satisfies `d_H(u,v) ≤ α_ℓ·d_G(u,v) + β_ℓ`
    /// (Corollary 2.11 with the exact recursions).
    pub fn certified_stretch(&self) -> (f64, f64) {
        (
            *self
                .alpha_sequence()
                .last()
                .expect("alpha sequence nonempty"),
            *self.beta_sequence().last().expect("beta sequence nonempty"),
        )
    }
}

/// Exponentiation `n^e` as `f64` for thresholds/bounds.
fn npow(n: usize, e: f64) -> f64 {
    (n as f64).powf(e)
}

/// Parameters for the centralized Algorithm 1 (§2.1.2).
///
/// # Example
///
/// ```
/// use usnae_core::params::CentralizedParams;
///
/// # fn main() -> Result<(), usnae_core::ParamError> {
/// let p = CentralizedParams::new(0.5, 4)?;
/// assert_eq!(p.ell(), 2); // ⌈log₂(5/2)⌉
/// assert!((p.size_bound(16) - 16f64.powf(1.25)).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CentralizedParams {
    epsilon: f64,
    kappa: u32,
    schedule: PhaseSchedule,
}

impl CentralizedParams {
    /// Validates `ε ∈ (0,1)`, `κ ≥ 2` and derives the §2.1.2 schedule with
    /// the §2.2.4 rescaling `ε_internal = ε/(34·ℓ)`.
    ///
    /// # Errors
    ///
    /// [`ParamError::EpsilonOutOfRange`] or [`ParamError::KappaTooSmall`].
    pub fn new(epsilon: f64, kappa: u32) -> Result<Self, ParamError> {
        Self::build(epsilon, kappa, true)
    }

    /// Like [`new`](Self::new) but **skips the §2.2.4 rescaling**: `ε` is
    /// used directly as the internal ε driving `δ_i = (1/ε)^i + 2R_i`.
    ///
    /// The certified `(α, β)` from the exact recursions remains sound (the
    /// stretch lemmas never use the rescaling), but `α` may exceed `1 + ε`.
    /// Experiments use this mode to surface multi-phase structure at
    /// simulable sizes: the rescaled `ε/(34ℓ)` makes `δ_1` exceed the
    /// diameter of any laptop-scale graph, collapsing every run into a
    /// single superclustering event.
    ///
    /// # Errors
    ///
    /// Same as [`new`](Self::new).
    pub fn with_raw_epsilon(epsilon: f64, kappa: u32) -> Result<Self, ParamError> {
        Self::build(epsilon, kappa, false)
    }

    fn build(epsilon: f64, kappa: u32, rescale: bool) -> Result<Self, ParamError> {
        if !(epsilon > 0.0 && epsilon < 1.0 && epsilon.is_finite()) {
            return Err(ParamError::EpsilonOutOfRange { epsilon });
        }
        if kappa < 2 {
            return Err(ParamError::KappaTooSmall { kappa });
        }
        let ell = (((kappa as f64 + 1.0) / 2.0).log2().ceil() as usize).max(1);
        let eps_internal = if rescale {
            epsilon / (34.0 * ell as f64)
        } else {
            epsilon
        };
        let schedule = PhaseSchedule::build(ell, eps_internal, 2);
        Ok(CentralizedParams {
            epsilon,
            kappa,
            schedule,
        })
    }

    /// The public (rescaled) ε: the multiplicative stretch is `1 + ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The sparsity parameter κ.
    pub fn kappa(&self) -> u32 {
        self.kappa
    }

    /// Number of the last phase, `ℓ = ⌈log₂((κ+1)/2)⌉` (≥ 1).
    pub fn ell(&self) -> usize {
        self.schedule.ell
    }

    /// The derived per-phase schedule.
    pub fn schedule(&self) -> &PhaseSchedule {
        &self.schedule
    }

    /// Popularity threshold `deg_i = n^(2^i/κ)` (real-valued, §2.1.2).
    pub fn degree_threshold(&self, i: usize, n: usize) -> f64 {
        npow(n, 2f64.powi(i as i32) / self.kappa as f64)
    }

    /// Smallest neighbor count that makes a cluster popular in phase `i`
    /// (`⌈deg_i⌉`, since counts are integers).
    pub fn degree_cap(&self, i: usize, n: usize) -> usize {
        self.degree_threshold(i, n).ceil() as usize
    }

    /// Distance threshold `δ_i`.
    pub fn delta(&self, i: usize) -> Dist {
        self.schedule.delta[i]
    }

    /// The headline size bound `n^(1+1/κ)` (Lemma 2.4; leading constant 1).
    pub fn size_bound(&self, n: usize) -> f64 {
        npow(n, 1.0 + 1.0 / self.kappa as f64)
    }

    /// Certified `(α, β)` for emulators built with these parameters; `α ≤
    /// 1 + ε` by the rescaling.
    pub fn certified_stretch(&self) -> (f64, f64) {
        self.schedule.certified_stretch()
    }

    /// The paper's closed-form additive term
    /// `β = 30·(34ℓ/ε)^(ℓ−1)` (§2.2.4) — looser than
    /// [`certified_stretch`](Self::certified_stretch), reported for
    /// comparison against Corollary 2.14.
    pub fn beta_closed_form(&self) -> f64 {
        let ell = self.ell() as f64;
        30.0 * (34.0 * ell / self.epsilon).powf(ell - 1.0)
    }
}

/// Parameters for the distributed CONGEST construction (§3.1.1) and its fast
/// centralized simulation (§3.3).
///
/// # Example
///
/// ```
/// use usnae_core::params::DistributedParams;
///
/// # fn main() -> Result<(), usnae_core::ParamError> {
/// let p = DistributedParams::new(0.5, 4, 0.5)?;
/// assert_eq!(p.i0(), 1); // ⌊log₂(κρ)⌋ = ⌊log₂ 2⌋
/// assert_eq!(p.ell(), 3); // i₀ + ⌈(κ+1)/(κρ)⌉ − 1
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedParams {
    epsilon: f64,
    kappa: u32,
    rho: f64,
    i0: usize,
    schedule: PhaseSchedule,
}

impl DistributedParams {
    /// Validates `ε ∈ (0,1)`, `κ ≥ 2`, `1/κ < ρ ≤ 1/2` and derives the
    /// §3.1.1 schedule with rescaling `ε_internal = ε·ρ/(90·ℓ)`.
    ///
    /// # Errors
    ///
    /// [`ParamError`] variants on each violated precondition.
    pub fn new(epsilon: f64, kappa: u32, rho: f64) -> Result<Self, ParamError> {
        Self::build(epsilon, kappa, rho, true)
    }

    /// Like [`new`](Self::new) but skipping the §3.2.4 rescaling (`ε` is
    /// used as the internal ε directly); see
    /// [`CentralizedParams::with_raw_epsilon`] for when this is appropriate.
    ///
    /// # Errors
    ///
    /// Same as [`new`](Self::new).
    pub fn with_raw_epsilon(epsilon: f64, kappa: u32, rho: f64) -> Result<Self, ParamError> {
        Self::build(epsilon, kappa, rho, false)
    }

    fn build(epsilon: f64, kappa: u32, rho: f64, rescale: bool) -> Result<Self, ParamError> {
        if !(epsilon > 0.0 && epsilon < 1.0 && epsilon.is_finite()) {
            return Err(ParamError::EpsilonOutOfRange { epsilon });
        }
        if kappa < 2 {
            return Err(ParamError::KappaTooSmall { kappa });
        }
        if !(rho >= 1.0 / kappa as f64 && rho <= 0.5 && rho.is_finite()) {
            return Err(ParamError::RhoOutOfRange { rho, kappa });
        }
        let kr = kappa as f64 * rho;
        let i0 = if kr >= 2.0 {
            kr.log2().floor() as usize
        } else {
            0
        };
        let ell = i0 + ((kappa as f64 + 1.0) / kr).ceil() as usize - 1;
        let ell = ell.max(1);
        let eps_internal = if rescale {
            epsilon * rho / (90.0 * ell as f64)
        } else {
            epsilon
        };
        let radius_multiplier = (4.0 / rho).ceil() as Dist + 2;
        let schedule = PhaseSchedule::build(ell, eps_internal, radius_multiplier);
        Ok(DistributedParams {
            epsilon,
            kappa,
            rho,
            i0,
            schedule,
        })
    }

    /// The public (rescaled) ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The sparsity parameter κ.
    pub fn kappa(&self) -> u32 {
        self.kappa
    }

    /// The running-time exponent ρ (`O(β·n^ρ)` rounds).
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Last phase of the exponential growth stage, `i₀ = ⌊log₂ κρ⌋`.
    pub fn i0(&self) -> usize {
        self.i0
    }

    /// Number of the last phase, `ℓ = i₀ + ⌈(κ+1)/(κρ)⌉ − 1`.
    pub fn ell(&self) -> usize {
        self.schedule.ell
    }

    /// The derived per-phase schedule.
    pub fn schedule(&self) -> &PhaseSchedule {
        &self.schedule
    }

    /// `deg_i`: `n^(2^i/κ)` during exponential growth (`i ≤ i₀`), `n^ρ`
    /// afterwards. Satisfies `deg_{i+1} ≤ deg_i²` everywhere — the property
    /// the telescoping size bound (eq. 18) needs.
    pub fn degree_threshold(&self, i: usize, n: usize) -> f64 {
        if i <= self.i0 {
            npow(n, 2f64.powi(i as i32) / self.kappa as f64)
        } else {
            npow(n, self.rho)
        }
    }

    /// `⌈deg_i⌉`, the integer popularity threshold.
    pub fn degree_cap(&self, i: usize, n: usize) -> usize {
        self.degree_threshold(i, n).ceil() as usize
    }

    /// Distance threshold `δ_i`.
    pub fn delta(&self, i: usize) -> Dist {
        self.schedule.delta[i]
    }

    /// Ruling-set separation `sep_i = 2δ_i + 1` (§3.1.2 Task 2).
    pub fn separation(&self, i: usize) -> Dist {
        sat_add(sat_mul(2, self.delta(i)), 1)
    }

    /// Ruling-set domination radius `rul_i = (2/ρ)·δ_i`.
    pub fn ruling_radius(&self, i: usize) -> Dist {
        ceil_dist(2.0 / self.rho * self.delta(i) as f64)
    }

    /// BFS ruling-forest depth `rul_i + δ_i` (§3.1.2 Task 3).
    pub fn forest_depth(&self, i: usize) -> Dist {
        sat_add(self.ruling_radius(i), self.delta(i))
    }

    /// The headline size bound `n^(1+1/κ)` (eq. 19).
    pub fn size_bound(&self, n: usize) -> f64 {
        npow(n, 1.0 + 1.0 / self.kappa as f64)
    }

    /// Certified `(α, β)` for emulators built with these parameters.
    pub fn certified_stretch(&self) -> (f64, f64) {
        self.schedule.certified_stretch()
    }

    /// The paper's closed-form additive term
    /// `β = (75/ρ)·(90ℓ/(ε·ρ))^(ℓ−1)` (§3.2.4).
    pub fn beta_closed_form(&self) -> f64 {
        let ell = self.ell() as f64;
        75.0 / self.rho * (90.0 * ell / (self.epsilon * self.rho)).powf(ell - 1.0)
    }

    /// The round budget the paper charges: `O(n^ρ/ε_int^ℓ)` (eq. 27),
    /// reported without the hidden constant.
    pub fn round_budget(&self, n: usize) -> f64 {
        npow(n, self.rho) / self.schedule.eps_internal.powi(self.ell() as i32)
    }
}

/// Parameters for the §4 near-additive **spanner** construction.
///
/// Uses the EN17a degree sequence: `γ = max(2, log₂log₂ κ)`,
/// `deg_i = n^((2^i−1)/(γκ) + 1/κ)` for `i ∈ [0, i₀]`, a transition phase at
/// `n^(ρ/2)`, then fixed growth at `n^ρ`.
///
/// # Example
///
/// ```
/// use usnae_core::params::SpannerParams;
///
/// # fn main() -> Result<(), usnae_core::ParamError> {
/// let p = SpannerParams::new(0.5, 8, 0.5)?;
/// assert!(p.ell() >= p.i0() + 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SpannerParams {
    epsilon: f64,
    kappa: u32,
    rho: f64,
    gamma: f64,
    i0: usize,
    schedule: PhaseSchedule,
}

impl SpannerParams {
    /// Validates parameters (`ε ∈ (0,1)`, `κ ≥ 2`, `1/κ ≤ ρ ≤ 1/2`) and
    /// derives the §4 schedule.
    ///
    /// # Errors
    ///
    /// [`ParamError`] variants on each violated precondition.
    pub fn new(epsilon: f64, kappa: u32, rho: f64) -> Result<Self, ParamError> {
        Self::build(epsilon, kappa, rho, true)
    }

    /// Like [`new`](Self::new) but skipping the rescaling; see
    /// [`CentralizedParams::with_raw_epsilon`].
    ///
    /// # Errors
    ///
    /// Same as [`new`](Self::new).
    pub fn with_raw_epsilon(epsilon: f64, kappa: u32, rho: f64) -> Result<Self, ParamError> {
        Self::build(epsilon, kappa, rho, false)
    }

    fn build(epsilon: f64, kappa: u32, rho: f64, rescale: bool) -> Result<Self, ParamError> {
        if !(epsilon > 0.0 && epsilon < 1.0 && epsilon.is_finite()) {
            return Err(ParamError::EpsilonOutOfRange { epsilon });
        }
        if kappa < 2 {
            return Err(ParamError::KappaTooSmall { kappa });
        }
        if !(rho >= 1.0 / kappa as f64 && rho <= 0.5 && rho.is_finite()) {
            return Err(ParamError::RhoOutOfRange { rho, kappa });
        }
        let gamma = (kappa as f64).log2().log2().max(2.0);
        let kr = kappa as f64 * rho;
        let by_gamma = if kr >= gamma {
            kr.ln() / gamma.ln()
        } else {
            0.0
        };
        let i0 = (by_gamma.floor() as usize).min(kr.floor() as usize);
        let ell = i0 + (1.0 / rho - 0.5).ceil() as usize;
        let ell = ell.max(i0 + 1);
        let eps_internal = if rescale {
            epsilon * rho / (90.0 * ell as f64)
        } else {
            epsilon
        };
        let radius_multiplier = (4.0 / rho).ceil() as Dist + 2;
        let schedule = PhaseSchedule::build(ell, eps_internal, radius_multiplier);
        Ok(SpannerParams {
            epsilon,
            kappa,
            rho,
            gamma,
            i0,
            schedule,
        })
    }

    /// The public ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The sparsity parameter κ.
    pub fn kappa(&self) -> u32 {
        self.kappa
    }

    /// The running-time exponent ρ.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// `γ = max(2, log₂log₂ κ)` of the EN17a sequence.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Last exponential-growth phase `i₀ = min(⌊log_γ κρ⌋, ⌊κρ⌋)`.
    pub fn i0(&self) -> usize {
        self.i0
    }

    /// Number of the last phase `ℓ' = i₀ + ⌈1/ρ − 1/2⌉`.
    pub fn ell(&self) -> usize {
        self.schedule.ell
    }

    /// The derived per-phase schedule.
    pub fn schedule(&self) -> &PhaseSchedule {
        &self.schedule
    }

    /// The §4 degree sequence: exponential stage
    /// `n^((2^i−1)/(γκ) + 1/κ)`, transition `n^(ρ/2)`, fixed `n^ρ`.
    pub fn degree_threshold(&self, i: usize, n: usize) -> f64 {
        if i <= self.i0 {
            let e = ((2f64.powi(i as i32) - 1.0) / (self.gamma * self.kappa as f64))
                + 1.0 / self.kappa as f64;
            npow(n, e)
        } else if i == self.i0 + 1 {
            npow(n, self.rho / 2.0)
        } else {
            npow(n, self.rho)
        }
    }

    /// `⌈deg_i⌉`, the integer popularity threshold.
    pub fn degree_cap(&self, i: usize, n: usize) -> usize {
        self.degree_threshold(i, n).ceil() as usize
    }

    /// Distance threshold `δ_i`.
    pub fn delta(&self, i: usize) -> Dist {
        self.schedule.delta[i]
    }

    /// Ruling-set separation `sep_i = 2δ_i + 1`.
    pub fn separation(&self, i: usize) -> Dist {
        sat_add(sat_mul(2, self.delta(i)), 1)
    }

    /// Ruling-set domination radius `rul_i = (2/ρ)·δ_i`.
    pub fn ruling_radius(&self, i: usize) -> Dist {
        ceil_dist(2.0 / self.rho * self.delta(i) as f64)
    }

    /// BFS ruling-forest depth `rul_i + δ_i`.
    pub fn forest_depth(&self, i: usize) -> Dist {
        sat_add(self.ruling_radius(i), self.delta(i))
    }

    /// The spanner size bound is `O(n^(1+1/κ))` (eq. 39); this returns the
    /// bound without its hidden constant, for trend reporting.
    pub fn size_bound(&self, n: usize) -> f64 {
        npow(n, 1.0 + 1.0 / self.kappa as f64)
    }

    /// The κ that makes the spanner *sparsest* (end of §4): Corollary 4.4
    /// admits κ up to `c·log n / (log(1/ε) + log(1/ρ) + log⁽³⁾n)`, and at
    /// `κ = c'·log n / log⁽³⁾n` the size is `O(n·log log n)`. Returns that
    /// κ with `c' = 1`, clamped to at least 2.
    pub fn sparsest_kappa(n: usize) -> u32 {
        let log_n = (n.max(4) as f64).log2();
        let log3_n = log_n.log2().max(2.0).log2().max(1.0);
        ((log_n / log3_n).round() as u32).max(2)
    }

    /// Certified `(α, β)` stretch pair.
    pub fn certified_stretch(&self) -> (f64, f64) {
        self.schedule.certified_stretch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centralized_rejects_bad_params() {
        assert!(CentralizedParams::new(0.0, 4).is_err());
        assert!(CentralizedParams::new(1.0, 4).is_err());
        assert!(CentralizedParams::new(f64::NAN, 4).is_err());
        assert!(CentralizedParams::new(0.5, 1).is_err());
        assert!(CentralizedParams::new(0.5, 2).is_ok());
    }

    #[test]
    fn centralized_ell_matches_formula() {
        // ℓ = ⌈log₂((κ+1)/2)⌉
        for (kappa, expected) in [
            (2u32, 1usize),
            (3, 1),
            (4, 2),
            (7, 2),
            (8, 3),
            (16, 4),
            (100, 6),
        ] {
            let p = CentralizedParams::new(0.5, kappa).unwrap();
            assert_eq!(p.ell(), expected, "kappa = {kappa}");
        }
    }

    #[test]
    fn centralized_degree_telescopes() {
        // deg_i = deg_{i-1}^2 — the identity behind Lemma 2.4.
        let p = CentralizedParams::new(0.5, 16).unwrap();
        let n = 10_000;
        for i in 1..=p.ell() {
            let prev = p.degree_threshold(i - 1, n);
            let cur = p.degree_threshold(i, n);
            assert!((cur - prev * prev).abs() < 1e-6 * cur, "phase {i}");
        }
    }

    #[test]
    fn schedule_recursions_match_definitions() {
        let p = CentralizedParams::new(0.5, 8).unwrap();
        let s = p.schedule();
        let inv = 1.0 / s.eps_internal;
        assert_eq!(s.radius[0], 0);
        for i in 0..=s.ell {
            let expected_delta = (inv.powi(i as i32)).ceil() as Dist + 2 * s.radius[i];
            assert_eq!(s.delta[i], expected_delta, "delta_{i}");
            assert_eq!(
                s.radius[i + 1],
                2 * s.delta[i] + s.radius[i],
                "radius_{}",
                i + 1
            );
        }
    }

    #[test]
    fn delta_zero_is_one_plus_buffer() {
        // δ_0 = ⌈(1/ε)^0⌉ + 2R_0 = 1: phase 0 connects graph neighbors.
        let p = CentralizedParams::new(0.9, 4).unwrap();
        assert_eq!(p.delta(0), 1);
    }

    #[test]
    fn certified_beta_below_closed_form() {
        let p = CentralizedParams::new(0.5, 8).unwrap();
        let (alpha, beta) = p.certified_stretch();
        assert!(alpha <= 1.0 + p.epsilon() + 1e-9, "alpha = {alpha}");
        assert!(
            beta <= p.beta_closed_form(),
            "{beta} vs {}",
            p.beta_closed_form()
        );
        assert!(beta > 0.0);
    }

    #[test]
    fn alpha_certified_below_one_plus_eps_across_params() {
        for &(eps, kappa) in &[(0.9, 2u32), (0.5, 4), (0.25, 16), (0.1, 64), (0.99, 128)] {
            let p = CentralizedParams::new(eps, kappa).unwrap();
            let (alpha, _) = p.certified_stretch();
            assert!(
                alpha <= 1.0 + eps + 1e-9,
                "eps={eps} kappa={kappa}: alpha={alpha}"
            );
        }
    }

    #[test]
    fn size_bound_monotone_in_kappa() {
        let n = 1000;
        let b2 = CentralizedParams::new(0.5, 2).unwrap().size_bound(n);
        let b8 = CentralizedParams::new(0.5, 8).unwrap().size_bound(n);
        let b64 = CentralizedParams::new(0.5, 64).unwrap().size_bound(n);
        assert!(b2 > b8 && b8 > b64);
        assert!(b64 >= n as f64);
    }

    #[test]
    fn distributed_rejects_bad_rho() {
        assert!(DistributedParams::new(0.5, 4, 0.2).is_err()); // rho <= 1/kappa
        assert!(DistributedParams::new(0.5, 4, 0.6).is_err()); // rho > 1/2
        assert!(DistributedParams::new(0.5, 4, 0.5).is_ok());
        assert!(DistributedParams::new(0.5, 4, f64::NAN).is_err());
    }

    #[test]
    fn distributed_stage_structure() {
        let p = DistributedParams::new(0.5, 8, 0.5).unwrap();
        // κρ = 4 → i₀ = 2; ℓ = 2 + ⌈9/4⌉ − 1 = 4.
        assert_eq!(p.i0(), 2);
        assert_eq!(p.ell(), 4);
        let n = 10_000;
        // Exponential stage then plateau at n^ρ.
        assert!(p.degree_threshold(3, n) <= p.degree_threshold(2, n) * p.degree_threshold(2, n));
        assert_eq!(p.degree_threshold(3, n), p.degree_threshold(4, n));
    }

    #[test]
    fn distributed_degree_square_property_everywhere() {
        // deg_{i+1} ≤ deg_i², required by the eq. (18) telescoping.
        for &(kappa, rho) in &[(4u32, 0.5f64), (8, 0.4), (16, 0.3), (64, 0.25)] {
            let p = DistributedParams::new(0.5, kappa, rho).unwrap();
            let n = 100_000;
            for i in 0..p.ell() {
                let cur = p.degree_threshold(i, n);
                let next = p.degree_threshold(i + 1, n);
                assert!(
                    next <= cur * cur * (1.0 + 1e-9),
                    "kappa={kappa} rho={rho} phase {i}: {next} > {cur}^2"
                );
            }
        }
    }

    #[test]
    fn distributed_ruling_parameters() {
        let p = DistributedParams::new(0.5, 4, 0.5).unwrap();
        let d0 = p.delta(0);
        assert_eq!(p.separation(0), 2 * d0 + 1);
        assert_eq!(p.ruling_radius(0), 4 * d0); // 2/ρ = 4
        assert_eq!(p.forest_depth(0), 5 * d0);
    }

    #[test]
    fn distributed_certified_alpha_within_eps() {
        for &(eps, kappa, rho) in &[(0.9, 4u32, 0.5f64), (0.5, 8, 0.4), (0.5, 16, 0.3)] {
            let p = DistributedParams::new(eps, kappa, rho).unwrap();
            let (alpha, beta) = p.certified_stretch();
            assert!(alpha <= 1.0 + eps + 1e-9, "alpha={alpha}");
            assert!(beta > 0.0 && beta.is_finite());
        }
    }

    #[test]
    fn spanner_params_structure() {
        let p = SpannerParams::new(0.5, 8, 0.5).unwrap();
        assert!(p.gamma() >= 2.0);
        let n = 10_000;
        // Degree thresholds never exceed n^ρ after the exponential stage,
        // and the transition phase sits at n^(ρ/2).
        let t = p.degree_threshold(p.i0() + 1, n);
        assert!((t - npow(n, p.rho() / 2.0)).abs() < 1e-9);
        if p.ell() >= p.i0() + 2 {
            assert_eq!(p.degree_threshold(p.i0() + 2, n), npow(n, p.rho()));
        }
    }

    #[test]
    fn spanner_gamma_grows_with_kappa() {
        let small = SpannerParams::new(0.5, 4, 0.5).unwrap();
        let large = SpannerParams::new(0.5, 1 << 16, 0.5).unwrap();
        assert_eq!(small.gamma(), 2.0);
        assert_eq!(large.gamma(), 4.0); // log₂log₂(2^16) = 4
    }

    #[test]
    fn spanner_allows_rho_equal_inverse_kappa() {
        // §4 admits ρ ∈ [1/κ, 1/2] (closed at 1/κ).
        assert!(SpannerParams::new(0.5, 4, 0.25).is_ok());
    }

    #[test]
    fn raw_epsilon_skips_rescaling() {
        let raw = CentralizedParams::with_raw_epsilon(0.5, 8).unwrap();
        let rescaled = CentralizedParams::new(0.5, 8).unwrap();
        assert_eq!(raw.schedule().eps_internal, 0.5);
        assert!(rescaled.schedule().eps_internal < 0.01);
        // Raw-ε thresholds stay small: multi-phase structure is simulable.
        assert!(raw.delta(1) < rescaled.delta(1));
        assert!(raw.delta(raw.ell()) < 1000);

        let raw_d = DistributedParams::with_raw_epsilon(0.5, 8, 0.5).unwrap();
        assert_eq!(raw_d.schedule().eps_internal, 0.5);
        let raw_s = SpannerParams::with_raw_epsilon(0.5, 8, 0.5).unwrap();
        assert_eq!(raw_s.schedule().eps_internal, 0.5);
    }

    #[test]
    fn raw_epsilon_certified_stretch_still_finite_and_sound() {
        let raw = CentralizedParams::with_raw_epsilon(0.5, 16).unwrap();
        let (alpha, beta) = raw.certified_stretch();
        assert!(alpha.is_finite() && alpha >= 1.0);
        assert!(beta.is_finite() && beta > 0.0);
        // No (1+ε) promise in raw mode — α may exceed it.
    }

    #[test]
    fn saturation_does_not_overflow() {
        // Tiny ε and large ℓ force the δ recursion to the cap without panic.
        let p = CentralizedParams::new(0.01, 1 << 20).unwrap();
        let s = p.schedule();
        assert!(s.delta.iter().all(|&d| d <= DELTA_CAP));
        assert!(s.radius.iter().all(|&r| r <= DELTA_CAP));
    }

    #[test]
    fn ultra_sparse_regime_size_bound_near_linear() {
        // κ = log²n ⇒ n^(1+1/κ) = n·2^(1/log n) = n(1 + o(1)).
        let n = 4096;
        let kappa = {
            let l = (n as f64).log2();
            (l * l) as u32
        };
        let p = CentralizedParams::new(0.5, kappa).unwrap();
        let bound = p.size_bound(n);
        assert!(bound < n as f64 * 1.06);
        assert!(bound >= n as f64);
    }
}
