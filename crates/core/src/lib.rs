//! The paper's primary contribution: ultra-sparse near-additive emulators
//! and sparse near-additive spanners (Elkin & Matar, PODC 2021).
//!
//! A *(1+ε, β)-emulator* of an unweighted undirected graph `G = (V, E)` is a
//! weighted graph `H` on `V` with
//! `d_G(u,v) ≤ d_H(u,v) ≤ (1+ε)·d_G(u,v) + β` for all `u, v`. The paper
//! shows that `H` can have **at most `n^(1+1/κ)` edges** — leading constant
//! exactly 1 — and in particular `n + o(n)` edges when `κ = ω(log n)`.
//!
//! Four constructions are reproduced:
//!
//! * [`centralized`] — Algorithm 1: the superclustering-and-interconnection
//!   (SAI) construction with the paper's novel *buffer sets* `N_i` and the
//!   global charging argument (§2).
//! * [`distributed`] — the deterministic CONGEST-model algorithm (§3):
//!   capped Bellman-Ford popular-cluster detection, ruling sets, BFS ruling
//!   forests, and hub-vertex splitting, in `O(β·n^ρ)` rounds.
//! * [`fast_centralized`] — the centralized simulation of the distributed
//!   algorithm (§3.3), `O(|E|·β·n^ρ)` time.
//! * [`spanner`] — the §4 variant producing *subgraph* spanners with
//!   `O(n^(1+1/κ))` edges (improving EM19's `O(β·n^(1+1/κ))`).
//!
//! Supporting modules: [`params`] (the paper's parameter algebra, §2.1.2,
//! §3.1.1, §4), [`cluster`] (partial partitions `P_i`), [`emulator`] (the
//! output object with per-edge provenance), [`charging`] (the Lemma 2.4
//! ledger), [`verify`] (size/stretch certification), and [`cache`] (the
//! fingerprint-keyed construction cache with the versioned snapshot
//! codec — see the "Caching" section of [`api`]).
//!
//! All constructions are reached through the unified [`api`]: a fluent
//! [`api::EmulatorBuilder`], one validated [`api::BuildConfig`], and the
//! [`api::registry`] catalogue that algorithm-generic consumers iterate.
//! The old per-construction free functions remain as deprecated shims for
//! one release.
//!
//! # Quickstart
//!
//! ```
//! use usnae_core::api::{Algorithm, Emulator};
//! use usnae_graph::generators;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = generators::gnp_connected(200, 0.05, 7)?;
//! let out = Emulator::builder(&g)
//!     .epsilon(0.5)
//!     .kappa(4)
//!     .algorithm(Algorithm::Centralized)
//!     .build()?;
//! // The headline size bound, leading constant 1:
//! assert!(out.num_edges() as f64 <= out.size_bound.unwrap());
//! // And the certified stretch that comes with it:
//! let (alpha, beta) = out.certified.unwrap();
//! assert!(alpha <= 1.5 && beta.is_finite());
//! # Ok(())
//! # }
//! ```

pub mod api;
pub mod cache;
pub mod centralized;
pub mod charging;
pub mod cluster;
pub mod distributed;
pub mod emulator;
pub mod engine;
pub mod error;
pub mod exec;
pub mod fast_centralized;
pub mod hopset;
pub mod oracle;
pub mod params;
pub mod sai;
pub mod serve;
pub mod spanner;
pub mod verify;

pub use api::{Algorithm, BuildConfig, BuildError, BuildOutput, Construction, EmulatorBuilder};
pub use emulator::{EdgeKind, EdgeProvenance, Emulator};
pub use error::ParamError;
pub use oracle::{Certified, EmStore, QueryEngine};
