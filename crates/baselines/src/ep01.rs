//! EP01-style emulator: SAI without buffer sets, with a ground partition.
//!
//! The construction follows Elkin–Peleg STOC'01 as recounted in the present
//! paper's §2: popular centers supercluster only the clusters within `δ_i`
//! of them; there is no buffer set `N_i`, so centers at distance
//! `(δ_i, 2δ_i]` stay in `S_i` and are processed later (possibly becoming
//! "stranded" near superclusters — the Fig. 3 problem). Connectivity between
//! superclusters and nearby unclustered clusters is restored by a *ground
//! partition*: we add a BFS spanning forest of `G` (≤ `n − 1` unit edges),
//! the additive term the paper's global charging argument eliminates.
//!
//! Per-phase accounting (the point of comparison): each phase may
//! contribute up to `n^(1+1/κ)` interconnection edges **plus** `O(n)`
//! superclustering edges, so the total is `O(log κ · n^(1+1/κ))` — versus
//! the paper's exactly `n^(1+1/κ)`.

use usnae_core::cluster::{Cluster, Partition};
use usnae_core::emulator::{EdgeKind, EdgeProvenance, Emulator};
use usnae_core::engine::Engine;
use usnae_core::params::CentralizedParams;
use usnae_graph::bfs::multi_source_bfs;
use usnae_graph::{Dist, Graph, VertexId};

/// Builds an EP01-style emulator; size `O(log κ · n^(1+1/κ)) + (n − 1)`.
#[deprecated(
    since = "0.2.0",
    note = "use the \"ep01\" entry of usnae_baselines::registry instead"
)]
pub fn build_ep01_emulator(g: &Graph, params: &CentralizedParams) -> Emulator {
    build_ep01(g, params, 1)
}

/// [`build_ep01_exec`] over an in-process shared-array engine.
pub(crate) fn build_ep01(g: &Graph, params: &CentralizedParams, threads: usize) -> Emulator {
    build_ep01_exec(g, params, &Engine::inproc(g, threads))
}

/// Crate-internal entry point behind the registry adapter (and the
/// deprecated free-function shim). Explorations run through `engine`
/// (in-process fan-out over a shared array or partitioned shards, or a
/// worker pool); the build is byte-identical for every thread count,
/// layout, and transport.
pub(crate) fn build_ep01_exec(
    g: &Graph,
    params: &CentralizedParams,
    engine: &Engine<'_>,
) -> Emulator {
    let n = g.num_vertices();
    let mut emulator = Emulator::new(n);
    let mut partition = Partition::singletons(n);

    for i in 0..=params.ell() {
        let last = i == params.ell();
        partition = run_phase(g, engine, &mut emulator, &partition, i, params, last);
    }

    // Ground partition: a BFS spanning forest of G (unit edges), restoring
    // connectivity between superclusters and stranded clusters. This is the
    // n − 1 additive term the paper's construction avoids.
    let roots: Vec<VertexId> = {
        let comps = usnae_graph::connectivity::components(g);
        let mut reps = vec![None; comps.count];
        for v in g.vertices() {
            if reps[comps.label[v]].is_none() {
                reps[comps.label[v]] = Some(v);
            }
        }
        reps.into_iter().flatten().collect()
    };
    let forest = multi_source_bfs(g, &roots, usnae_graph::INF);
    for v in g.vertices() {
        if let Some(p) = forest.parent[v] {
            emulator.add_edge(
                v,
                p,
                1,
                EdgeProvenance {
                    phase: params.ell() + 1, // the ground partition "phase"
                    kind: EdgeKind::Superclustering,
                    charged_to: v,
                },
            );
        }
    }
    emulator
}

#[allow(clippy::too_many_arguments)]
fn run_phase(
    g: &Graph,
    engine: &Engine<'_>,
    emulator: &mut Emulator,
    partition: &Partition,
    i: usize,
    params: &CentralizedParams,
    last: bool,
) -> Partition {
    let n = g.num_vertices();
    let delta = params.delta(i);
    let cap = params.degree_cap(i, n);
    let center_of = partition.center_index();
    let centers = partition.centers();
    let mut in_s = vec![false; n];
    for &c in &centers {
        in_s[c] = true;
    }

    // Explorations prefetched per chunk and consumed in center order (the
    // same sharded pattern as the paper's Algorithm 1); balls are sorted by
    // vertex id, matching the historical dense-array scan. The chunk size
    // adapts to how many prefetched balls went stale — it never affects
    // the output, only the wasted work.
    let mut superclusters: Vec<(VertexId, Vec<usize>)> = Vec::new();
    let mut policy = usnae_core::exec::ChunkPolicy::new(engine.threads());
    let mut pos = 0;
    while pos < centers.len() {
        let block = &centers[pos..(pos + policy.chunk()).min(centers.len())];
        pos += block.len();
        let todo: Vec<VertexId> = block.iter().copied().filter(|&c| in_s[c]).collect();
        if todo.is_empty() {
            continue;
        }
        let balls = engine.balls(&todo, delta);
        let mut used = 0usize;
        for (&rc, ball) in todo.iter().zip(&balls) {
            if !in_s[rc] {
                continue;
            }
            used += 1;
            in_s[rc] = false;
            let gamma: Vec<(VertexId, Dist)> = ball
                .iter()
                .copied()
                .filter(|&(v, _)| v != rc && in_s[v])
                .collect();
            let popular = gamma.len() >= cap && !last;
            if popular {
                let mut members = vec![center_of[&rc]];
                for &(v, d) in &gamma {
                    emulator.add_edge(
                        rc,
                        v,
                        d,
                        EdgeProvenance {
                            phase: i,
                            kind: EdgeKind::Superclustering,
                            charged_to: v,
                        },
                    );
                    in_s[v] = false;
                    members.push(center_of[&v]);
                }
                superclusters.push((rc, members));
            } else {
                // Interconnect with nearby clusters still in S only (no buffer
                // sets, no edges to already-superclustered clusters).
                for &(v, d) in &gamma {
                    emulator.add_edge(
                        rc,
                        v,
                        d,
                        EdgeProvenance {
                            phase: i,
                            kind: EdgeKind::Interconnection,
                            charged_to: rc,
                        },
                    );
                }
            }
        }
        policy.record(todo.len(), used);
    }

    let next: Vec<Cluster> = superclusters
        .into_iter()
        .map(|(center, idxs)| {
            let mut members = Vec::new();
            for idx in idxs {
                members.extend_from_slice(&partition.cluster(idx).members);
            }
            Cluster { center, members }
        })
        .collect();
    Partition::from_clusters(next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use usnae_graph::generators;

    #[test]
    fn includes_spanning_forest() {
        let g = generators::gnp_connected(80, 0.06, 1).unwrap();
        let p = CentralizedParams::new(0.5, 4).unwrap();
        let h = build_ep01(&g, &p, 1);
        // At least the spanning forest is present.
        assert!(h.num_edges() >= 79);
        // Connectivity in H follows from the forest.
        let d = h.distances_from(0);
        assert!(d.iter().all(|x| x.is_some()));
    }

    #[test]
    fn never_shortens_distances() {
        let g = generators::gnp_connected(60, 0.08, 2).unwrap();
        let p = CentralizedParams::new(0.5, 3).unwrap();
        let h = build_ep01(&g, &p, 1);
        let apsp = usnae_graph::distance::Apsp::new(&g);
        for (u, v) in usnae_graph::distance::sample_pairs(&g, 100, 3) {
            let dh = h.distance(u, v).unwrap();
            assert!(dh >= apsp.distance(u, v).unwrap());
        }
    }

    #[test]
    fn sparser_input_dominates_output() {
        // On a path the construction degenerates to the path + forest.
        let g = generators::path(30).unwrap();
        let p = CentralizedParams::new(0.5, 2).unwrap();
        let h = build_ep01(&g, &p, 1);
        assert_eq!(h.num_edges(), 29);
    }

    #[test]
    fn uses_more_edges_than_bound_would_allow_on_dense_inputs() {
        // The point of the comparison: EP01's accounting can exceed
        // n^(1+1/κ) where the paper's construction cannot. (It does not on
        // every input; we only check EP01 stays within its own coarse
        // O(log κ)·bound + n.)
        let g = generators::gnp_connected(200, 0.2, 4).unwrap();
        let p = CentralizedParams::new(0.5, 4).unwrap();
        let h = build_ep01(&g, &p, 1);
        let per_phase = p.size_bound(200);
        let coarse = (p.ell() as f64 + 1.0) * per_phase + 200.0;
        assert!((h.num_edges() as f64) <= coarse);
    }
}
