//! EM19-style spanner baseline (Elkin–Matar PODC'19).
//!
//! Structurally the same SAI pipeline as the paper's §4 spanner —
//! popularity detection, ruling forests, shortest-path interconnection —
//! but with the §3 degree schedule (`deg_i = n^(2^i/κ)` then `n^ρ`) instead
//! of §4's EN17a sequence. Without the geometric decay that sequence buys,
//! interconnection paths of length up to `δ_i` pile up and the size is
//! `O(β·n^(1+1/κ))` — the factor Corollary 4.4 removes. Experiment E7
//! measures the gap.

use usnae_core::cluster::{Cluster, Partition};
use usnae_core::emulator::{EdgeKind, EdgeProvenance, Emulator};
use usnae_core::engine::Engine;
use usnae_core::params::DistributedParams;
use usnae_core::sai::Exploration;
use usnae_graph::bfs::multi_source_bfs;
use usnae_graph::{Dist, Graph, VertexId};

/// Builds an EM19-style spanner: a subgraph of `G` with
/// `O(β·n^(1+1/κ))` edges.
#[deprecated(
    since = "0.2.0",
    note = "use the \"em19\" entry of usnae_baselines::registry instead"
)]
pub fn build_em19_spanner(g: &Graph, params: &DistributedParams) -> Emulator {
    build_em19(g, params, 1)
}

/// Crate-internal entry point behind the registry adapter (and the
/// deprecated free-function shim). The Task-1 explorations shard over
/// `threads`; output is byte-identical for every thread count.
pub(crate) fn build_em19(g: &Graph, params: &DistributedParams, threads: usize) -> Emulator {
    build_em19_exec(g, params, &Engine::inproc(g, threads))
}

/// [`build_em19`] with the Task-1 explorations and ruling-set carving
/// running through `engine` (shared array, partitioned shards, or a
/// worker pool) — byte-identical either way.
pub(crate) fn build_em19_exec(
    g: &Graph,
    params: &DistributedParams,
    engine: &Engine<'_>,
) -> Emulator {
    let n = g.num_vertices();
    let mut spanner = Emulator::new(n);
    let mut partition = Partition::singletons(n);
    for i in 0..=params.ell() {
        let last = i == params.ell();
        partition = run_phase(g, engine, &mut spanner, &partition, i, params, last);
    }
    spanner
}

fn add_path(
    spanner: &mut Emulator,
    path: &[VertexId],
    phase: usize,
    kind: EdgeKind,
    charged_to: VertexId,
) {
    for w in path.windows(2) {
        spanner.add_edge(
            w[0],
            w[1],
            1,
            EdgeProvenance {
                phase,
                kind,
                charged_to,
            },
        );
    }
}

fn run_phase(
    g: &Graph,
    engine: &Engine<'_>,
    spanner: &mut Emulator,
    partition: &Partition,
    i: usize,
    params: &DistributedParams,
    last: bool,
) -> Partition {
    let n = g.num_vertices();
    let delta = params.delta(i);
    let cap = params.degree_cap(i, n);
    let center_of = partition.center_index();
    let centers = partition.centers();
    let mut is_center = vec![false; n];
    for &c in &centers {
        is_center[c] = true;
    }

    // Task-1 scans are pure per-center BFS — sharded, merged in center
    // order (deterministic for every thread count and transport).
    let explorations: Vec<Exploration> = engine.explorations(&centers, delta);
    let neighbor_lists: Vec<Vec<(VertexId, Dist)>> = explorations
        .iter()
        .map(|e| e.centers_found(&is_center))
        .collect();
    let popular: Vec<VertexId> = centers
        .iter()
        .zip(&neighbor_lists)
        .filter(|(_, nbrs)| nbrs.len() >= cap)
        .map(|(&rc, _)| rc)
        .collect();

    let mut superclustered = vec![false; n];
    let mut next_clusters: Vec<Cluster> = Vec::new();
    if !last && !popular.is_empty() {
        let rulers = engine.ruling_set(&popular, delta);
        let forest = multi_source_bfs(g, &rulers, params.forest_depth(i).min(n as Dist));
        let mut members_of: std::collections::HashMap<VertexId, Vec<usize>> =
            rulers.iter().map(|&r| (r, vec![center_of[&r]])).collect();
        for &rc in &centers {
            let Some(root) = forest.root[rc] else {
                continue;
            };
            superclustered[rc] = true;
            if rc == root {
                continue;
            }
            let path = forest
                .path_to_root(rc)
                .expect("rooted vertices have tree paths");
            add_path(spanner, &path, i, EdgeKind::Superclustering, rc);
            members_of
                .get_mut(&root)
                .expect("roots seeded")
                .push(center_of[&rc]);
        }
        for &root in &rulers {
            let mut members = Vec::new();
            for &idx in &members_of[&root] {
                members.extend_from_slice(&partition.cluster(idx).members);
            }
            next_clusters.push(Cluster {
                center: root,
                members,
            });
        }
    }

    for ((&rc, nbrs), expl) in centers.iter().zip(&neighbor_lists).zip(&explorations) {
        if superclustered[rc] {
            continue;
        }
        for &(v, _) in nbrs {
            let path = expl
                .path_to(v)
                .expect("neighbor reached by this exploration");
            add_path(spanner, &path, i, EdgeKind::Interconnection, rc);
        }
    }

    Partition::from_clusters(next_clusters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use usnae_core::api::{Algorithm, Emulator};
    use usnae_core::verify::is_subgraph_spanner;
    use usnae_graph::generators;

    #[test]
    fn is_a_subgraph() {
        let g = generators::gnp_connected(150, 0.08, 1).unwrap();
        let p = DistributedParams::new(0.5, 4, 0.5).unwrap();
        let s = build_em19(&g, &p, 1);
        assert!(is_subgraph_spanner(&g, s.graph()));
    }

    #[test]
    fn never_disconnects_what_g_connects() {
        let g = generators::gnp_connected(80, 0.08, 2).unwrap();
        let p = DistributedParams::new(0.5, 4, 0.5).unwrap();
        let s = build_em19(&g, &p, 1);
        let d = s.distances_from(0);
        assert!(d.iter().all(|x| x.is_some()));
    }

    #[test]
    fn paper_spanner_is_at_most_as_large_on_dense_graphs() {
        // E7's direction: §4 (EN17a sequence) ≤ EM19 (§3 sequence) sizes,
        // up to small-instance noise, on dense inputs.
        let g = generators::gnp_connected(300, 0.15, 3).unwrap();
        let em19 = build_em19(&g, &DistributedParams::new(0.5, 8, 0.5).unwrap(), 1);
        let ours = Emulator::builder(&g)
            .algorithm(Algorithm::Spanner)
            .kappa(8)
            .build()
            .unwrap()
            .emulator;
        assert!(
            ours.num_edges() <= em19.num_edges() + 300,
            "ours {} vs em19 {}",
            ours.num_edges(),
            em19.num_edges()
        );
    }

    #[test]
    fn path_input_reproduced() {
        let g = generators::path(20).unwrap();
        let p = DistributedParams::new(0.5, 2, 0.5).unwrap();
        let s = build_em19(&g, &p, 1);
        assert_eq!(s.num_edges(), 19);
    }
}
