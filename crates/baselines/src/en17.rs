//! EN17a-style randomized superclustering emulator (Elkin–Neiman SODA'17).
//!
//! The variant recounted in the paper's §2: instead of deterministic
//! popularity + buffer sets, *cluster centers are sampled* with probability
//! `1/deg_i`; every cluster with a sampled center within `δ_i` joins the
//! closest such center (randomized superclustering needs no ground
//! partition and no buffer sets), and clusters with no sampled center
//! nearby interconnect with all clusters within `δ_i`. Linear expected
//! size, but per-phase analysis — the size cannot reach the paper's
//! ultra-sparse `n + o(n)` with leading constant 1 (§2: "it cannot be used
//! to provide ultra-sparse emulators").

use usnae_core::cluster::{Cluster, Partition};
use usnae_core::emulator::{EdgeKind, EdgeProvenance, Emulator};
use usnae_core::engine::Engine;
use usnae_core::params::CentralizedParams;
use usnae_graph::bfs::multi_source_bfs;
use usnae_graph::rng::Rng;
use usnae_graph::{Graph, VertexId};

/// Builds an EN17a-style emulator (randomized superclustering), seeded.
#[deprecated(
    since = "0.2.0",
    note = "use the \"en17a\" entry of usnae_baselines::registry instead"
)]
pub fn build_en17_emulator(g: &Graph, params: &CentralizedParams, seed: u64) -> Emulator {
    build_en17(g, params, seed, 1)
}

/// Crate-internal entry point behind the registry adapter (and the
/// deprecated free-function shim). The sampling RNG runs before any
/// sharded work, so for a fixed `seed` the build is byte-identical for
/// every thread count.
pub(crate) fn build_en17(
    g: &Graph,
    params: &CentralizedParams,
    seed: u64,
    threads: usize,
) -> Emulator {
    build_en17_exec(g, params, seed, &Engine::inproc(g, threads))
}

/// [`build_en17`] with the explorations running through `engine` (shared
/// array, partitioned shards, or a worker pool) — byte-identical either
/// way.
pub(crate) fn build_en17_exec(
    g: &Graph,
    params: &CentralizedParams,
    seed: u64,
    engine: &Engine<'_>,
) -> Emulator {
    let n = g.num_vertices();
    let mut emulator = Emulator::new(n);
    let mut partition = Partition::singletons(n);
    let mut rng = Rng::seed_from_u64(seed);

    for i in 0..=params.ell() {
        let last = i == params.ell();
        partition = run_phase(
            g,
            engine,
            &mut emulator,
            &partition,
            i,
            params,
            last,
            &mut rng,
        );
        if partition.is_empty() {
            break;
        }
    }
    emulator
}

#[allow(clippy::too_many_arguments)]
fn run_phase(
    g: &Graph,
    engine: &Engine<'_>,
    emulator: &mut Emulator,
    partition: &Partition,
    i: usize,
    params: &CentralizedParams,
    last: bool,
    rng: &mut Rng,
) -> Partition {
    let n = g.num_vertices();
    let delta = params.delta(i);
    let center_of = partition.center_index();
    let centers = partition.centers();
    let mut is_center = vec![false; n];
    for &c in &centers {
        is_center[c] = true;
    }

    // Sample centers with probability 1/deg_i.
    let p_sample = (1.0 / params.degree_threshold(i, n)).clamp(0.0, 1.0);
    let sampled: Vec<VertexId> = if last {
        Vec::new()
    } else {
        centers
            .iter()
            .copied()
            .filter(|_| rng.gen_bool(p_sample))
            .collect()
    };
    let sampled_set: std::collections::HashSet<VertexId> = sampled.iter().copied().collect();

    let mut next: Vec<Cluster> = Vec::new();
    if !sampled.is_empty() {
        // Clusters join the closest sampled center within δ_i.
        let forest = multi_source_bfs(g, &sampled, delta);
        let mut members: std::collections::HashMap<VertexId, Vec<usize>> =
            sampled.iter().map(|&s| (s, vec![center_of[&s]])).collect();
        for &rc in &centers {
            if sampled_set.contains(&rc) {
                continue;
            }
            if let Some(root) = forest.root[rc] {
                emulator.add_edge(
                    root,
                    rc,
                    forest.dist[rc],
                    EdgeProvenance {
                        phase: i,
                        kind: EdgeKind::Superclustering,
                        charged_to: rc,
                    },
                );
                members
                    .get_mut(&root)
                    .expect("sampled roots seeded")
                    .push(center_of[&rc]);
            }
        }
        let mut roots: Vec<VertexId> = members.keys().copied().collect();
        roots.sort_unstable();
        for r in roots {
            let mut cluster_members = Vec::new();
            for &idx in &members[&r] {
                cluster_members.extend_from_slice(&partition.cluster(idx).members);
            }
            next.push(Cluster {
                center: r,
                members: cluster_members,
            });
        }
    }

    // Unsuperclustered clusters interconnect with all clusters within δ_i.
    let joined: std::collections::HashSet<VertexId> = if sampled.is_empty() {
        Default::default()
    } else {
        let forest = multi_source_bfs(g, &sampled, delta);
        centers
            .iter()
            .copied()
            .filter(|&c| forest.root[c].is_some())
            .collect()
    };
    // The interconnection scan is status-free (the joined set and center
    // set are fixed above), so the per-center explorations shard cleanly
    // and no prefetched ball can go stale; edges are still inserted in
    // center order, balls sorted by vertex id. Fixed-size blocks bound the
    // in-flight ball memory.
    let work: Vec<VertexId> = centers
        .iter()
        .copied()
        .filter(|rc| !joined.contains(rc))
        .collect();
    for block in work.chunks(4096) {
        let balls = engine.balls(block, delta);
        for (&rc, ball) in block.iter().zip(&balls) {
            for &(v, d) in ball {
                if v != rc && is_center[v] {
                    emulator.add_edge(
                        rc,
                        v,
                        d,
                        EdgeProvenance {
                            phase: i,
                            kind: EdgeKind::Interconnection,
                            charged_to: rc,
                        },
                    );
                }
            }
        }
    }
    Partition::from_clusters(next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use usnae_graph::generators;

    #[test]
    fn deterministic_per_seed() {
        let g = generators::gnp_connected(80, 0.08, 1).unwrap();
        let p = CentralizedParams::new(0.5, 4).unwrap();
        assert_eq!(
            build_en17(&g, &p, 5, 1).num_edges(),
            build_en17(&g, &p, 5, 1).num_edges()
        );
    }

    #[test]
    fn never_shortens_distances() {
        let g = generators::gnp_connected(60, 0.08, 3).unwrap();
        let p = CentralizedParams::new(0.5, 3).unwrap();
        let h = build_en17(&g, &p, 9, 1);
        let apsp = usnae_graph::distance::Apsp::new(&g);
        for (u, v) in usnae_graph::distance::sample_pairs(&g, 100, 7) {
            if let Some(dh) = h.distance(u, v) {
                assert!(dh >= apsp.distance(u, v).unwrap());
            }
        }
    }

    #[test]
    fn path_gives_path() {
        let g = generators::path(25).unwrap();
        let p = CentralizedParams::new(0.5, 2).unwrap();
        let h = build_en17(&g, &p, 1, 1);
        // δ_0 = 1 interconnections reproduce the path; sampling at
        // probability 25^(-1/2) leaves mostly interconnections.
        assert!(h.num_edges() >= 20);
    }

    #[test]
    fn size_stays_moderate_on_random_graphs() {
        let n = 250;
        let g = generators::gnp_connected(n, 0.06, 5).unwrap();
        let p = CentralizedParams::new(0.5, 4).unwrap();
        let h = build_en17(&g, &p, 3, 1);
        // Expected O(n^(1+1/κ)); allow randomness slack.
        assert!((h.num_edges() as f64) < 5.0 * p.size_bound(n));
    }
}
