//! [`Construction`] adapters: the baseline lineages behind the unified API.
//!
//! Each baseline keeps its own build logic; the adapters translate a
//! [`BuildConfig`] into the parameters the lineage consumes and wrap the
//! result in a [`BuildOutput`]. None of the baselines certifies an
//! `(α, β)` pair through this repository's exact recursions —
//! `certified_stretch` returns `None` and [`Supports::certified`] is false,
//! which is itself part of the comparison the paper draws.

use std::time::Instant;
use usnae_core::api::{
    require_inproc, BuildConfig, BuildError, BuildOutput, BuildStats, Construction, Supports,
};
use usnae_core::engine::{finalize_worker_build, Engine, EngineReport};
use usnae_graph::Graph;

use crate::em19::build_em19_exec;
use crate::en17::build_en17_exec;
use crate::ep01::build_ep01_exec;
use crate::tz06::build_tz06;

/// Execution stats for a baseline build timed as one block (the baselines
/// do not record per-phase timings). A partitioned build contributes its
/// per-shard layout records; a worker build its transport and measured
/// message statistics.
fn timed_stats(cfg: &BuildConfig, t0: Instant, report: EngineReport) -> BuildStats {
    BuildStats {
        threads: cfg.threads,
        total: t0.elapsed(),
        phases: Vec::new(),
        shards: report.shards,
        transport: report.transport,
        messages: report.messages,
        ..BuildStats::default()
    }
}

/// Elkin–Peleg STOC'01: SAI without buffer sets, plus the ground partition.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ep01;

impl Construction for Ep01 {
    fn name(&self) -> &'static str {
        "ep01"
    }

    fn description(&self) -> &'static str {
        "EP01 baseline: SAI without buffer sets + ground partition (pays n − 1 extra edges)"
    }

    fn supports(&self) -> Supports {
        Supports {
            parallel: true,
            ..Supports::none()
        }
    }

    fn certified_stretch(&self, _cfg: &BuildConfig) -> Option<(f64, f64)> {
        None
    }

    fn size_bound(&self, n: usize, cfg: &BuildConfig) -> Option<f64> {
        // O(log κ · n^(1+1/κ)) + (n − 1): one n^(1+1/κ) interconnection
        // budget per phase plus the spanning forest.
        let ell = cfg.centralized_params().ok()?.ell() as f64;
        Some((ell + 1.0) * cfg.size_bound(n) + n as f64)
    }

    fn build(&self, g: &Graph, cfg: &BuildConfig) -> Result<BuildOutput, BuildError> {
        cfg.validate()?;
        let params = cfg.centralized_params()?;
        let t0 = Instant::now();
        let engine = Engine::new(g, cfg);
        let emulator = build_ep01_exec(g, &params, &engine);
        let (report, held) = engine.finish_retaining(emulator.provenance())?;
        let mut out = BuildOutput {
            emulator,
            certified: None,
            size_bound: self.size_bound(g.num_vertices(), cfg),
            trace: None,
            congest: None,
            stats: timed_stats(cfg, t0, report),
            algorithm: self.name(),
        };
        finalize_worker_build(&mut out, held, cfg)?;
        Ok(out)
    }
}

/// Thorup–Zwick SODA'06: sampled hierarchy + bunches (randomized).
#[derive(Debug, Clone, Copy, Default)]
pub struct Tz06;

impl Construction for Tz06 {
    fn name(&self) -> &'static str {
        "tz06"
    }

    fn description(&self) -> &'static str {
        "TZ06 baseline: sampled hierarchy + bunches, expected size O(κ·n^(1+1/κ))"
    }

    fn supports(&self) -> Supports {
        Supports {
            uses_seed: true,
            ..Supports::none()
        }
    }

    fn certified_stretch(&self, _cfg: &BuildConfig) -> Option<(f64, f64)> {
        None
    }

    fn size_bound(&self, _n: usize, _cfg: &BuildConfig) -> Option<f64> {
        None // expected-size bound only; nothing deterministic to assert
    }

    fn build(&self, g: &Graph, cfg: &BuildConfig) -> Result<BuildOutput, BuildError> {
        cfg.validate()?;
        if cfg.kappa < 2 {
            // TZ06 only consumes kappa, but the BuildConfig contract
            // (kappa >= 2) still applies: kappa < 2 degenerates the
            // sampling probability and yields a clique.
            return Err(usnae_core::ParamError::KappaTooSmall { kappa: cfg.kappa }.into());
        }
        // TZ06 has no exploration fan-out to hand workers, so a worker
        // transport request is refused outright (a requested partition is
        // still harmless: no shard records, same stream either way).
        require_inproc(self.name(), cfg)?;
        let t0 = Instant::now();
        let report = Engine::inproc(g, cfg.threads).finish()?;
        Ok(BuildOutput {
            emulator: build_tz06(g, cfg.kappa, cfg.seed),
            certified: None,
            size_bound: None,
            trace: None,
            congest: None,
            stats: timed_stats(cfg, t0, report),
            algorithm: self.name(),
        })
    }
}

/// Elkin–Neiman SODA'17: randomized superclustering (sampled centers).
#[derive(Debug, Clone, Copy, Default)]
pub struct En17;

impl Construction for En17 {
    fn name(&self) -> &'static str {
        "en17a"
    }

    fn description(&self) -> &'static str {
        "EN17a baseline: randomized superclustering, linear expected size, no ultra-sparse constant"
    }

    fn supports(&self) -> Supports {
        Supports {
            uses_seed: true,
            parallel: true,
            ..Supports::none()
        }
    }

    fn certified_stretch(&self, _cfg: &BuildConfig) -> Option<(f64, f64)> {
        None
    }

    fn size_bound(&self, _n: usize, _cfg: &BuildConfig) -> Option<f64> {
        None // expected-size bound only
    }

    fn build(&self, g: &Graph, cfg: &BuildConfig) -> Result<BuildOutput, BuildError> {
        cfg.validate()?;
        let params = cfg.centralized_params()?;
        let t0 = Instant::now();
        let engine = Engine::new(g, cfg);
        let emulator = build_en17_exec(g, &params, cfg.seed, &engine);
        let (report, held) = engine.finish_retaining(emulator.provenance())?;
        let mut out = BuildOutput {
            emulator,
            certified: None,
            size_bound: None,
            trace: None,
            congest: None,
            stats: timed_stats(cfg, t0, report),
            algorithm: self.name(),
        };
        finalize_worker_build(&mut out, held, cfg)?;
        Ok(out)
    }
}

/// Elkin–Matar PODC'19: §3-schedule spanner paying the O(β) size factor.
#[derive(Debug, Clone, Copy, Default)]
pub struct Em19;

impl Construction for Em19 {
    fn name(&self) -> &'static str {
        "em19"
    }

    fn description(&self) -> &'static str {
        "EM19 baseline spanner: §3 degree schedule with path insertion, size O(β·n^(1+1/κ))"
    }

    fn supports(&self) -> Supports {
        Supports {
            uses_rho: true,
            parallel: true,
            subgraph: true,
            ..Supports::none()
        }
    }

    fn certified_stretch(&self, _cfg: &BuildConfig) -> Option<(f64, f64)> {
        None
    }

    fn size_bound(&self, _n: usize, _cfg: &BuildConfig) -> Option<f64> {
        None // O(β·n^(1+1/κ)) with an uncharacterized constant
    }

    fn build(&self, g: &Graph, cfg: &BuildConfig) -> Result<BuildOutput, BuildError> {
        cfg.validate()?;
        let params = cfg.distributed_params()?;
        let t0 = Instant::now();
        let engine = Engine::new(g, cfg);
        let emulator = build_em19_exec(g, &params, &engine);
        let (report, held) = engine.finish_retaining(emulator.provenance())?;
        let mut out = BuildOutput {
            emulator,
            certified: None,
            size_bound: None,
            trace: None,
            congest: None,
            stats: timed_stats(cfg, t0, report),
            algorithm: self.name(),
        };
        finalize_worker_build(&mut out, held, cfg)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usnae_graph::generators;

    #[test]
    fn adapters_build_and_identify() {
        let g = generators::gnp_connected(80, 0.08, 3).unwrap();
        let cfg = BuildConfig::default();
        let list: Vec<Box<dyn Construction>> = vec![
            Box::new(Ep01),
            Box::new(Tz06),
            Box::new(En17),
            Box::new(Em19),
        ];
        for c in list {
            let out = c.build(&g, &cfg).unwrap();
            assert_eq!(out.algorithm, c.name());
            assert!(out.num_edges() > 0, "{}", c.name());
            assert!(out.certified.is_none(), "baselines certify nothing");
            if let Some(bound) = out.size_bound {
                assert!(out.num_edges() as f64 <= bound, "{}", c.name());
            }
        }
    }

    #[test]
    fn em19_is_subgraph() {
        let g = generators::gnp_connected(100, 0.1, 5).unwrap();
        let out = Em19.build(&g, &BuildConfig::default()).unwrap();
        assert!(usnae_core::verify::is_subgraph_spanner(
            &g,
            out.emulator.graph()
        ));
    }

    #[test]
    fn seeded_baselines_are_deterministic_through_the_adapter() {
        let g = generators::gnp_connected(70, 0.08, 9).unwrap();
        let cfg = BuildConfig {
            seed: 42,
            ..BuildConfig::default()
        };
        for c in [&Tz06 as &dyn Construction, &En17] {
            let a = c.build(&g, &cfg).unwrap();
            let b = c.build(&g, &cfg).unwrap();
            assert_eq!(a.num_edges(), b.num_edges(), "{}", c.name());
        }
    }

    #[test]
    fn zero_threads_rejected_by_every_adapter() {
        let g = generators::path(5).unwrap();
        let cfg = BuildConfig {
            threads: 0,
            ..BuildConfig::default()
        };
        for c in crate::registry::baselines() {
            assert!(c.build(&g, &cfg).is_err(), "{}", c.name());
        }
    }

    #[test]
    fn parallel_adapters_match_sequential_output() {
        let g = generators::gnp_connected(120, 0.06, 4).unwrap();
        for threads in [2usize, 4] {
            let seq = BuildConfig {
                seed: 11,
                ..BuildConfig::default()
            };
            let par = BuildConfig {
                threads,
                ..seq.clone()
            };
            for c in crate::registry::baselines() {
                let a = c.build(&g, &seq).unwrap();
                let b = c.build(&g, &par).unwrap();
                assert_eq!(
                    a.emulator.provenance(),
                    b.emulator.provenance(),
                    "{} threads={threads}",
                    c.name()
                );
            }
        }
    }

    #[test]
    fn tz06_refuses_worker_transports() {
        let g = generators::gnp_connected(40, 0.15, 1).unwrap();
        for transport in [
            usnae_core::api::TransportKind::Channel,
            usnae_core::api::TransportKind::Process,
            usnae_core::api::TransportKind::Socket,
        ] {
            let cfg = BuildConfig {
                shards: 2,
                transport,
                ..BuildConfig::default()
            };
            match Tz06.build(&g, &cfg) {
                Err(BuildError::Param(usnae_core::ParamError::TransportUnsupported {
                    algorithm,
                    transport: t,
                })) => {
                    assert_eq!(algorithm, "tz06");
                    assert_eq!(t, transport.name());
                }
                other => panic!("tz06 must refuse {}: got {other:?}", transport.name()),
            }
        }
        assert!(Tz06.build(&g, &BuildConfig::default()).is_ok());
    }

    #[test]
    fn invalid_config_rejected() {
        let g = generators::path(5).unwrap();
        let cfg = BuildConfig {
            epsilon: 7.0,
            ..BuildConfig::default()
        };
        assert!(Ep01.build(&g, &cfg).is_err());
        assert!(En17.build(&g, &cfg).is_err());
        assert!(Em19.build(&g, &cfg).is_err());
        // TZ06 ignores epsilon but must still enforce kappa >= 2.
        let degenerate = BuildConfig {
            kappa: 0,
            ..BuildConfig::default()
        };
        assert!(Tz06.build(&g, &degenerate).is_err());
        assert!(Tz06.build(&g, &BuildConfig::default()).is_ok());
    }
}
