//! Baseline constructions the paper compares against and improves upon.
//!
//! Experiment E8 pits the paper's emulator against the three prior
//! emulator lineages, and E7 pits the §4 spanner against EM19:
//!
//! * [`ep01`] — Elkin–Peleg STOC'01 style SAI **without buffer sets**, plus
//!   the ground-partition spanning forest that costs the extra `n − 1`
//!   edges the paper's accounting eliminates.
//! * [`tz06`] — Thorup–Zwick SODA'06 scale-free randomized emulator
//!   (sampled hierarchy + bunches), expected size `O(κ·n^(1+1/κ))`.
//! * [`en17`] — Elkin–Neiman SODA'17 style randomized superclustering
//!   (sampled centers instead of buffer sets), linear-size emulators.
//! * [`em19`] — Elkin–Matar PODC'19 style spanner: the §3 pipeline with
//!   path insertion but **without** the §4 degree sequence, paying the
//!   `O(β)` size factor that Corollary 4.4 removes.
//!
//! These are reproductions of the *constructions' structure and accounting*
//! as described in the present paper's §1–2 comparisons (not line-by-line
//! ports of the original papers); each module documents the simplifications.
//!
//! All four lineages implement [`usnae_core::api::Construction`] through
//! [`adapter`], and [`registry::all`] serves the complete catalogue (paper
//! constructions + baselines) that `eval`, `bench` and the CLI iterate:
//!
//! ```
//! use usnae_baselines::registry;
//! use usnae_core::api::BuildConfig;
//! use usnae_graph::generators;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = generators::gnp_connected(80, 0.08, 1)?;
//! let em19 = registry::find("em19").expect("baseline registered");
//! let out = em19.build(&g, &BuildConfig::default())?;
//! assert!(out.num_edges() > 0);
//! # Ok(())
//! # }
//! ```

pub mod adapter;
pub mod em19;
pub mod en17;
pub mod ep01;
pub mod registry;
pub mod tz06;
