//! Thorup–Zwick SODA'06 scale-free emulator (the sampled hierarchy).
//!
//! The classic randomized construction: a hierarchy
//! `V = A_0 ⊇ A_1 ⊇ … ⊇ A_{κ−1}`, each `A_{i+1}` sampled from `A_i` with
//! probability `n^(−1/κ)`. Every `v ∈ A_i \ A_{i+1}` adds weighted edges to
//! its *bunch*: all `u ∈ A_i` strictly closer than its nearest `A_{i+1}`
//! vertex (the *pivot*), plus one edge to the pivot itself. Vertices of the
//! last level connect to all of `A_{κ−1}`.
//!
//! Expected size `O(κ·n^(1+1/κ))`; stretch is near-additive with sublinear
//! error. The comparison point for E8 is the size's leading factor — `κ`
//! here versus exactly 1 in the paper's construction.

use usnae_core::emulator::{EdgeKind, EdgeProvenance, Emulator};
use usnae_graph::bfs::{bfs_bounded, multi_source_bfs};
use usnae_graph::rng::Rng;
use usnae_graph::{Dist, Graph};

/// Builds the TZ06 emulator with `κ` levels and sampling probability
/// `n^(−1/κ)`, seeded for reproducibility.
#[deprecated(
    since = "0.2.0",
    note = "use the \"tz06\" entry of usnae_baselines::registry instead"
)]
pub fn build_tz06_emulator(g: &Graph, kappa: u32, seed: u64) -> Emulator {
    build_tz06(g, kappa, seed)
}

/// Crate-internal entry point behind the registry adapter (and the
/// deprecated free-function shim).
pub(crate) fn build_tz06(g: &Graph, kappa: u32, seed: u64) -> Emulator {
    let n = g.num_vertices();
    let mut emulator = Emulator::new(n);
    if n == 0 {
        return emulator;
    }
    let mut rng = Rng::seed_from_u64(seed);
    let p = (n as f64).powf(-1.0 / kappa as f64);

    let mut level: Vec<Vec<usize>> = vec![(0..n).collect()];
    for _ in 1..kappa {
        let prev = level.last().expect("at least A_0 exists");
        let next: Vec<usize> = prev.iter().copied().filter(|_| rng.gen_bool(p)).collect();
        if next.is_empty() {
            break;
        }
        level.push(next);
    }

    let levels = level.len();
    for i in 0..levels {
        let a_i: std::collections::HashSet<usize> = level[i].iter().copied().collect();
        if i + 1 < levels {
            let a_next = &level[i + 1];
            let a_next_set: std::collections::HashSet<usize> = a_next.iter().copied().collect();
            // Pivot distances d(v, A_{i+1}) via one multi-source BFS.
            let pivots = multi_source_bfs(g, a_next, usnae_graph::INF);
            for &v in &level[i] {
                if a_next_set.contains(&v) {
                    continue;
                }
                let pivot_dist = pivots.dist[v];
                // Bunch: A_i-vertices strictly closer than the pivot.
                if pivot_dist > 0 {
                    let horizon = pivot_dist.saturating_sub(1);
                    let ball = bfs_bounded(g, v, horizon);
                    for (u, d) in ball.iter().enumerate() {
                        if let Some(d) = *d {
                            if u != v && a_i.contains(&u) {
                                add(&mut emulator, v, u, d, i);
                            }
                        }
                    }
                }
                // Edge to the pivot itself.
                if let Some(pivot) = pivots.root[v] {
                    add(&mut emulator, v, pivot, pivot_dist, i);
                }
            }
        } else {
            // Last level: clique over A_{levels-1} (weights = exact dists).
            for (a_idx, &v) in level[i].iter().enumerate() {
                let d = usnae_graph::bfs::bfs(g, v);
                for &u in level[i].iter().skip(a_idx + 1) {
                    if let Some(d) = d[u] {
                        add(&mut emulator, v, u, d, i);
                    }
                }
            }
        }
    }
    emulator
}

fn add(h: &mut Emulator, u: usize, v: usize, w: Dist, phase: usize) {
    h.add_edge(
        u,
        v,
        w,
        EdgeProvenance {
            phase,
            kind: EdgeKind::Interconnection,
            charged_to: u,
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use usnae_graph::generators;

    #[test]
    fn deterministic_per_seed() {
        let g = generators::gnp_connected(80, 0.08, 1).unwrap();
        let h1 = build_tz06(&g, 4, 7);
        let h2 = build_tz06(&g, 4, 7);
        assert_eq!(h1.num_edges(), h2.num_edges());
    }

    #[test]
    fn never_shortens_distances() {
        let g = generators::gnp_connected(70, 0.07, 2).unwrap();
        let h = build_tz06(&g, 3, 3);
        let apsp = usnae_graph::distance::Apsp::new(&g);
        for (u, v) in usnae_graph::distance::sample_pairs(&g, 120, 5) {
            if let Some(dh) = h.distance(u, v) {
                assert!(dh >= apsp.distance(u, v).unwrap());
            }
        }
    }

    #[test]
    fn connected_input_connected_output() {
        // Bunches + pivots connect everything through the top level.
        let g = generators::gnp_connected(60, 0.08, 4).unwrap();
        let h = build_tz06(&g, 3, 11);
        let d = h.distances_from(0);
        assert!(
            d.iter().all(|x| x.is_some()),
            "emulator must span the graph"
        );
    }

    #[test]
    fn size_within_expected_factor() {
        // Expected O(κ·n^(1+1/κ)); allow generous slack over the expectation
        // for the randomness.
        let n = 300;
        let g = generators::gnp_connected(n, 0.05, 5).unwrap();
        let kappa = 4;
        let h = build_tz06(&g, kappa, 13);
        let bound = kappa as f64 * (n as f64).powf(1.0 + 1.0 / kappa as f64);
        assert!(
            (h.num_edges() as f64) < 4.0 * bound,
            "{} vs expected O({bound})",
            h.num_edges()
        );
    }

    #[test]
    fn single_level_collapses_to_clique() {
        let g = generators::path(6).unwrap();
        let h = build_tz06(&g, 1, 0);
        // κ = 1: one level, clique over all vertices.
        assert_eq!(h.num_edges(), 15);
    }
}
