//! The full algorithm registry: paper constructions + baseline lineages.
//!
//! This is the catalogue `eval`, `bench`, the CLI and the parity tests
//! iterate. The paper constructions come from
//! [`usnae_core::api::registry`]; the baselines are the adapter types in
//! [`crate::adapter`].

use crate::adapter::{Em19, En17, Ep01, Tz06};
use usnae_core::api::{registry as core_registry, Construction};

/// The four baseline lineages, in paper order (§1.1 then §4).
pub fn baselines() -> Vec<Box<dyn Construction>> {
    vec![
        Box::new(Ep01),
        Box::new(Tz06),
        Box::new(En17),
        Box::new(Em19),
    ]
}

/// Every construction in the workspace: the five paper entries followed by
/// the four baselines.
pub fn all() -> Vec<Box<dyn Construction>> {
    let mut list = core_registry::all();
    list.extend(baselines());
    list
}

/// Emulator-producing constructions (paper + baselines, no spanners).
pub fn emulators() -> Vec<Box<dyn Construction>> {
    all()
        .into_iter()
        .filter(|c| !c.supports().subgraph)
        .collect()
}

/// Spanner-producing constructions (subgraph outputs).
pub fn spanners() -> Vec<Box<dyn Construction>> {
    all()
        .into_iter()
        .filter(|c| c.supports().subgraph)
        .collect()
}

/// Looks any construction (paper or baseline) up by registry name.
pub fn find(name: &str) -> Option<Box<dyn Construction>> {
    all().into_iter().find(|c| c.name() == name)
}

/// All registry names, catalogue order.
pub fn names() -> Vec<&'static str> {
    all().iter().map(|c| c.name()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_registry_has_nine_distinct_entries() {
        let names = names();
        assert_eq!(names.len(), 9);
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }

    #[test]
    fn find_resolves_paper_and_baseline_names() {
        for name in ["centralized", "spanner", "ep01", "tz06", "en17a", "em19"] {
            assert!(find(name).is_some(), "{name}");
        }
        assert!(find("bogus").is_none());
    }

    #[test]
    fn split_partitions_registry() {
        assert_eq!(emulators().len() + spanners().len(), all().len());
        // Spanners: the two §4 variants plus EM19.
        assert_eq!(spanners().len(), 3);
    }
}
